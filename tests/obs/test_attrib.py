"""Attribution engine: tree reconstruction, coverage, the roofline join.

The synthetic-trace tests pin the attribution *semantics* (sum-capped
coverage, interval containment, graceful degradation); the model tests
pin the end-to-end join on real instrumented runs, including the
measured-vs-analytic arithmetic-intensity cross-check and worker-shard
merge-back coverage.
"""

import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad
from repro.obs.attrib import (
    AttributionReport,
    build_attribution,
    normalize_events,
)
from repro.obs.instrument import instrument_model
from repro.obs.metrics import OpCounters
from repro.obs.roofline import Roofline
from repro.obs.tracer import Tracer

ROOF = Roofline(peak_flops=1e9, stream_bandwidth=1e8)


def span(name, ts, dur, cat="", tid=1, **attrs):
    return {
        "type": "span",
        "name": name,
        "ts_us": ts,
        "dur_us": dur,
        "tid": tid,
        "depth": 0,
        "parent": None,
        "cat": cat,
        "attrs": attrs,
    }


class TestCoverageSemantics:
    def test_leaf_explains_itself(self):
        rep = build_attribution([span("work", 0, 100)])
        assert rep.span_coverage == pytest.approx(1.0)
        assert rep.unexplained_us == pytest.approx(0.0)

    def test_container_explained_by_children_sum(self):
        rep = build_attribution(
            [
                span("child.a", 10, 30),
                span("child.b", 50, 40),
                span("root", 0, 100),
            ]
        )
        assert rep.total_us == pytest.approx(100.0)
        # 70 of 100 us explained; 30 us residual
        assert rep.span_coverage == pytest.approx(0.7)
        assert rep.unexplained_us == pytest.approx(30.0)

    def test_concurrent_children_capped_at_parent(self):
        # two shards whose walls sum past the parent (true parallelism)
        rep = build_attribution(
            [
                span("shard.a", 0, 90),
                span("shard.b", 5, 90),
                span("root", 0, 100),
            ]
        )
        assert rep.span_coverage == pytest.approx(1.0)

    def test_nesting_attributes_through_depth(self):
        rep = build_attribution(
            [
                span("leaf", 10, 50),
                span("mid", 5, 80),
                span("root", 0, 100),
            ]
        )
        # root <- mid (explained 50 by leaf) -> coverage 50/100
        assert rep.span_coverage == pytest.approx(0.5)
        row = rep.row("mid")
        assert row.self_us == pytest.approx(30.0)

    def test_root_filter(self):
        events = [span("a.work", 0, 50), span("b.work", 60, 50)]
        rep = build_attribution(events, root="a")
        assert rep.roots == ["a.work"]
        assert rep.total_us == pytest.approx(50.0)

    def test_empty_trace_degrades_gracefully(self):
        rep = build_attribution([])
        assert isinstance(rep, AttributionReport)
        assert rep.rows == []
        assert rep.span_coverage == 0.0
        assert "coverage" in rep.render()  # renders, no crash

    def test_disabled_tracer_yields_empty_report(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            pass
        rep = build_attribution(tracer)
        assert rep.rows == [] and rep.span_coverage == 0.0


class TestRooflineJoin:
    def test_counters_join_and_classification(self):
        ev = span(
            "k",
            0,
            1000.0,  # 1 ms
            counters={"mults": 500_000},  # -> 1e6 FLOPs (paired adds)
            bytes_io=1e5,
        )
        rep = build_attribution([ev], roofline=ROOF)
        row = rep.row("k")
        assert row.ops == pytest.approx(1e6)
        assert row.intensity == pytest.approx(10.0)  # ridge sits there
        assert row.attained_flops == pytest.approx(1e9)
        assert row.bound == "compute"
        assert row.attained_fraction == pytest.approx(1.0)

    def test_counted_additions_preferred_over_pairing(self):
        ev = span(
            "k", 0, 1000.0,
            counters={"mults": 100, "major_additions": 40, "half_additions": 10},
            bytes_io=10.0,
        )
        rep = build_attribution([ev], roofline=ROOF)
        assert rep.row("k").ops == pytest.approx(150.0)

    def test_sim_rows_keep_model_bound(self):
        events = [
            span("sim.network", 0, 100, cat="accel"),
            {
                "type": "instant",
                "name": "sim.layer",
                "ts_us": 50,
                "dur_us": None,
                "tid": 1,
                "depth": 1,
                "parent": "sim.network",
                "cat": "accel",
                "attrs": {
                    "layer": "C1",
                    "multiplications": 100,
                    "additions": 90,
                    "preprocessing_additions": 10,
                    "dram_bytes": 400.0,
                    "cycles": 1234,
                    "energy_total_j": 1e-6,
                    "bound": "memory",
                },
            },
        ]
        rep = build_attribution(events, roofline=ROOF)
        row = rep.row("sim.layer.C1")
        assert row.kind == "sim"
        assert row.ops == pytest.approx(200.0)
        assert row.cycles == pytest.approx(1234)
        # the accel model's own verdict survives; host roofline not applied
        assert row.bound == "memory"

    def test_report_round_trips_through_jsonl(self, tmp_path):
        rep = build_attribution(
            [span("k", 0, 10, counters={"mults": 8}, bytes_io=4.0)], roofline=ROOF
        )
        path = tmp_path / "attrib.jsonl"
        n = rep.write_jsonl(str(path))
        lines = [l for l in path.read_text().splitlines() if l]
        assert len(lines) == n == 2  # summary + one row
        assert "attrib_summary" in lines[0] and '"k"' in lines[1]


class TestOpCountersRoundTrip:
    def test_merge_from_dict_as_dict_round_trip(self):
        """Property: as_dict/from_dict is the identity, merge is addition."""
        rng = np.random.default_rng(7)
        fields = [
            f for f in OpCounters().as_dict(include_derived=False)
        ]
        for _ in range(25):
            doc_a = {f: int(rng.integers(0, 1000)) for f in fields}
            doc_b = {f: int(rng.integers(0, 1000)) for f in fields}
            a, b = OpCounters.from_dict(doc_a), OpCounters.from_dict(doc_b)
            assert a.as_dict(include_derived=False) == doc_a
            merged = OpCounters.from_dict(doc_a)
            merged.merge(b)
            got = merged.as_dict(include_derived=False)
            assert got == {f: doc_a[f] + doc_b[f] for f in fields}


class TestInstrumentedModelJoin:
    def test_model_coverage_above_floor(self):
        from repro.obs.attrib import attribute_model_run

        rep = attribute_model_run("lenet5", simulate=False, root="lenet5")
        assert rep.span_coverage >= 0.9
        assert any(r.kind == "layer" and r.ops for r in rep.rows)

    def test_intensity_cross_checks_analytic_model(self):
        """Measured intensity matches the closed-form opcount/bytes model.

        For a plain Conv2d leaf the engine's ops come from the analytic
        2*N*M*HO*WO*C*K^2 count and bytes from array sizes, so the two
        sides must agree to well under the 5%% acceptance band; the
        fused leaves' measured mult counters must match the same
        geometry formula.
        """
        from repro.compiler import CompileContext, mlcnn_pipeline
        from repro.models import build_model

        model = build_model("lenet5")
        mlcnn_pipeline(strict=False).run(model, CompileContext())
        tracer = Tracer(enabled=True)
        instrument_model(model, tracer=tracer, prefix="lenet5", counters=True)
        model.eval()
        n = 2
        x = np.random.default_rng(0).normal(size=(n, 3, 32, 32))
        fused = model.features[0]  # FusedConvPool bound to a kernel
        with no_grad():
            out0 = fused(Tensor(x))
        rep = build_attribution(tracer)
        row = rep.row("lenet5.features.0.forward")
        m, c, kh, kw = fused.weight.data.shape
        _, _, po, qo = out0.shape
        # fused conv+pool kernel: mults = pooled outputs x macs each,
        # engine pairs each mult with its accumulate add
        analytic_ops = 2.0 * n * m * po * qo * c * kh * kw
        assert row.ops == pytest.approx(analytic_ops, rel=0.05)
        analytic_bytes = 8.0 * (
            x.size + fused.weight.data.size + fused.bias.data.size + out0.data.size
        )
        assert row.bytes_moved == pytest.approx(analytic_bytes, rel=0.05)
        assert row.intensity == pytest.approx(analytic_ops / analytic_bytes, rel=0.05)

    def test_counters_instrumentation_free_when_disabled(self):
        """counters=True must stay near-zero overhead with tracing off."""
        from tests.obs.test_overhead import min_wall, small_model

        x = Tensor(np.random.default_rng(1).normal(size=(4, 3, 32, 32)))
        plain = small_model()
        tracer = Tracer(enabled=False)
        instrumented = instrument_model(small_model(), tracer=tracer, counters=True)
        plain.eval()
        instrumented.eval()

        def run_plain():
            with no_grad():
                plain(x)

        def run_instrumented():
            with no_grad():
                instrumented(x)

        run_plain()
        run_instrumented()
        base = min_wall(run_plain, repeats=7)
        traced = min_wall(run_instrumented, repeats=7)
        overhead = traced / base - 1.0
        assert overhead < 0.15, f"disabled counters overhead {overhead:.1%}"
        assert tracer.events == []


class TestWorkerShardCoverage:
    def test_parallel_run_keeps_coverage(self):
        """Shard merge-back keeps workers>1 coverage above the 0.9 gate;
        dropping the merged shard spans collapses it — coverage detects
        exactly that failure."""
        from repro.core.parallel import parallel_fused_conv_pool
        from repro.obs.tracer import get_tracer

        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 32, 32, 32))
        w = rng.normal(size=(64, 32, 3, 3))
        b = rng.normal(size=64)
        parallel_fused_conv_pool(x, w, b, pool=2, padding=1, workers=2)  # warm pool
        tracer = get_tracer()
        # On a loaded 1-core host a single traced run can still eat a
        # scheduler hiccup between task dispatch and shard completion;
        # the property under test is that the shard merge-back *can*
        # explain the wall, so take the best of a few warm attempts.
        rep, events = None, None
        for _ in range(4):
            tracer.clear()
            tracer.enable()
            try:
                parallel_fused_conv_pool(x, w, b, pool=2, padding=1, workers=2)
            finally:
                tracer.disable()
            candidate_events = normalize_events(tracer)
            candidate = build_attribution(candidate_events, root="parallel")
            if rep is None or candidate.span_coverage > rep.span_coverage:
                rep, events = candidate, candidate_events
            if rep.span_coverage >= 0.9:
                break
        assert rep.roots == ["parallel.fused_conv_pool"]
        assert rep.span_coverage >= 0.9, (
            f"coverage {rep.span_coverage:.3f} with shards merged"
        )
        shard_rows = [r for r in rep.rows if r.kind == "shard" and "shard" in r.name]
        assert shard_rows and all(r.ops for r in shard_rows)

        # amputate half the merge-back: a lost shard span must show up
        # as unexplained time, not be papered over.  (Losing *all*
        # children is indistinguishable from a leaf, which explains
        # itself — partial loss is the detectable failure mode.)
        first_shard = next(e for e in events if "shard" in str(e["name"]))
        without = [e for e in events if e is not first_shard]
        broken = build_attribution(without, root="parallel")
        assert broken.span_coverage < rep.span_coverage - 0.05
        assert broken.span_coverage < 0.9


class TestRecordSpan:
    def test_backdated_span_lands_inside_open_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            time.sleep(0.002)
            tracer.record_span("foreign", dur_us=1500.0, category="parallel")
        rep = build_attribution(tracer)
        row = rep.row("foreign")
        assert row.wall_us == pytest.approx(1500.0)
        # the foreign span was attributed as a child of parent
        parent = rep.row("parent")
        assert parent.self_us < parent.wall_us

    def test_disabled_tracer_record_span_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record_span("x", dur_us=10.0)
        assert tracer.events == []
