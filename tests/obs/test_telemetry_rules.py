"""SLO rule engine: debounce, hysteresis, severities, label scoping."""

import pytest

from repro.obs.telemetry.registry import TelemetryRegistry
from repro.obs.telemetry.rules import Alert, AlertEngine, SloRule


@pytest.fixture
def reg():
    return TelemetryRegistry(enabled=True)


def test_rule_validation():
    with pytest.raises(ValueError):
        SloRule("r", "m", 1.0, direction="sideways")
    with pytest.raises(ValueError):
        SloRule("r", "m", 1.0, severity="meh")
    with pytest.raises(ValueError):
        SloRule("r", "m", 1.0, quantile=1.5)
    with pytest.raises(ValueError):
        SloRule("r", "m", 1.0, clear=2.0)  # above: clear must be <= threshold
    with pytest.raises(ValueError):
        SloRule("r", "m", 1.0, direction="below", clear=0.5)


def test_immediate_fire_without_for_duration(reg):
    g = reg.gauge("q")
    engine = AlertEngine([SloRule("deep", "q", threshold=10.0)], reg)
    g.set(5)
    assert engine.evaluate(now=0.0) == []
    g.set(11)
    fired = engine.evaluate(now=1.0)
    assert len(fired) == 1
    assert fired[0].rule == "deep" and fired[0].value == 11


def test_for_duration_debounce_fires_exactly_once(reg):
    """The acceptance contract: a sustained breach -> exactly one alert."""
    g = reg.gauge("q")
    engine = AlertEngine([SloRule("deep", "q", threshold=10.0, for_seconds=2.0)], reg)
    g.set(20)
    all_fired = []
    for t in (0.0, 0.5, 1.0, 1.5, 2.5, 3.0, 10.0, 60.0):
        all_fired += engine.evaluate(now=t)
    assert len(all_fired) == 1
    assert all_fired[0].fired_at == 2.5  # first evaluation past for_seconds
    assert len(engine.active()) == 1


def test_blip_shorter_than_for_duration_never_fires(reg):
    g = reg.gauge("q")
    engine = AlertEngine([SloRule("deep", "q", threshold=10.0, for_seconds=5.0)], reg)
    g.set(20)
    assert engine.evaluate(now=0.0) == []
    g.set(1)
    assert engine.evaluate(now=1.0) == []  # recovered: pending resets
    g.set(20)
    assert engine.evaluate(now=2.0) == []
    assert engine.evaluate(now=6.9) == []  # only 4.9 s since t=2
    assert len(engine.evaluate(now=7.1)) == 1


def test_hysteresis_blocks_flapping(reg):
    g = reg.gauge("q")
    engine = AlertEngine(
        [SloRule("deep", "q", threshold=10.0, clear=4.0)], reg
    )
    g.set(12)
    assert len(engine.evaluate(now=0.0)) == 1
    # oscillating between clear and fire thresholds: still one episode
    for t, v in [(1.0, 8.0), (2.0, 11.0), (3.0, 5.0), (4.0, 12.0)]:
        g.set(v)
        assert engine.evaluate(now=t) == []
    assert len(engine.active()) == 1
    g.set(3.0)  # crosses the clear threshold: resolves
    assert engine.evaluate(now=5.0) == []
    assert engine.active() == []
    assert engine.history[0].resolved_at == 5.0
    # a fresh breach is a new episode
    g.set(12)
    assert len(engine.evaluate(now=6.0)) == 1
    assert len(engine.history) == 2


def test_direction_below_throughput_floor(reg):
    g = reg.gauge("qps")
    engine = AlertEngine(
        [SloRule("slow", "qps", threshold=100.0, direction="below", clear=150.0)], reg
    )
    g.set(500)
    assert engine.evaluate(now=0.0) == []
    g.set(50)
    assert len(engine.evaluate(now=1.0)) == 1
    g.set(120)  # above threshold but below clear: still firing
    assert engine.evaluate(now=2.0) == []
    assert len(engine.active()) == 1
    g.set(200)
    engine.evaluate(now=3.0)
    assert engine.active() == []


def test_histogram_rule_watches_quantile(reg):
    h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0, 1000.0))
    engine = AlertEngine(
        [SloRule("p99", "lat", threshold=100.0, quantile=0.99, severity="page")], reg
    )
    assert engine.evaluate(now=0.0) == []  # empty histogram: no series value
    for _ in range(100):
        h.observe(5.0)
    assert engine.evaluate(now=1.0) == []
    for _ in range(100):
        h.observe(900.0)  # half the mass is now slow; p99 >> 100
    fired = engine.evaluate(now=2.0)
    assert len(fired) == 1
    assert fired[0].severity == "page"
    assert "p99" in fired[0].message


def test_label_scoped_rule_only_watches_matching_series(reg):
    g = reg.gauge("depth")
    g.set(99, pool="kernel")
    g.set(1, pool="plan")
    engine = AlertEngine(
        [SloRule("deep-plan", "depth", threshold=10.0, labels={"pool": "plan"})], reg
    )
    assert engine.evaluate(now=0.0) == []  # kernel series breaches, but scoped out
    g.set(20, pool="plan")
    fired = engine.evaluate(now=1.0)
    assert len(fired) == 1
    assert fired[0].labels == {"pool": "plan"}
    assert "pool=plan" in fired[0].message


def test_unscoped_rule_tracks_each_series_independently(reg):
    g = reg.gauge("depth")
    g.set(20, pool="kernel")
    g.set(20, pool="plan")
    engine = AlertEngine([SloRule("deep", "depth", threshold=10.0)], reg)
    fired = engine.evaluate(now=0.0)
    assert len(fired) == 2
    assert {tuple(a.labels.items()) for a in fired} == {
        (("pool", "kernel"),), (("pool", "plan"),)
    }


def test_alert_message_names_metric_value_threshold(reg):
    g = reg.gauge("train.samples_per_sec")
    g.set(3.0)
    engine = AlertEngine(
        [
            SloRule(
                "slow-training",
                "train.samples_per_sec",
                threshold=10.0,
                direction="below",
                severity="warn",
                description="throughput collapsed",
            )
        ],
        reg,
    )
    (alert,) = engine.evaluate(now=0.0)
    msg = alert.message
    assert "train.samples_per_sec" in msg
    assert "3.000" in msg and "10" in msg
    assert "[warn]" in msg and "throughput collapsed" in msg


def test_missing_metric_is_not_an_error(reg):
    engine = AlertEngine([SloRule("r", "does.not.exist", threshold=1.0)], reg)
    assert engine.evaluate(now=0.0) == []


def test_alert_as_dict_round_trip(reg):
    g = reg.gauge("q")
    g.set(99)
    engine = AlertEngine([SloRule("deep", "q", threshold=10.0)], reg)
    (alert,) = engine.evaluate(now=7.0)
    doc = alert.as_dict()
    assert doc["rule"] == "deep" and doc["fired_at"] == 7.0
    assert doc["resolved_at"] is None and alert.active
