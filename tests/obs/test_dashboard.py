"""Dashboard rendering: sparklines, markdown and HTML output."""

import pytest

from repro.obs.dashboard import (
    build_dashboard,
    render_html,
    render_markdown,
    sparkline,
    write_dashboard,
)
from repro.obs.metrics import MetricRegistry, OpCounters
from repro.obs.regress import gate_metrics


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series_is_mid_blocks(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_short_series_empty(self):
        assert sparkline([]) == ""
        assert sparkline([1.0]) == ""


@pytest.fixture
def registry(tmp_path):
    reg = MetricRegistry(str(tmp_path))
    reg.update("core", {"table2.rate[k=3]": 0.4}, stamp={"git_sha": "r1"})
    reg.update("core", {"table2.rate[k=3]": 0.42}, stamp={"git_sha": "r2"})
    return reg


class TestRendering:
    def test_markdown_sections(self, registry):
        current = {"core": {"table2.rate[k=3]": 0.5, "table2.new[k=5]": 1.0}}
        report = gate_metrics(current, registry)
        counters = OpCounters(mults=100, mults_eliminated=300,
                              half_additions=10, lar_reuse_hits=30)
        text = render_markdown(build_dashboard(registry, current, counters, report))
        assert "# Benchmark dashboard" in text
        assert "## Area `core`" in text
        assert "## Regression gate" in text
        assert "## Measured counters" in text
        assert "table2.rate[k=3]" in text
        # trend sparkline over history + current value
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")
        # counter-derived headline percentages
        assert "RME eliminated 75.0%" in text
        assert "LAR+GAR avoided 75.0%" in text
        # zero-valued counters are omitted from the table
        assert "dram_row_misses" not in text

    def test_html_is_escaped_and_complete(self, registry):
        current = {"core": {"table2.rate[k=3]": 0.42}}
        html_text = render_html(build_dashboard(registry, current))
        assert html_text.startswith("<!doctype html>")
        assert html_text.endswith("</body></html>")
        assert "<table>" in html_text
        assert "table2.rate[k=3]" in html_text

    def test_unseeded_area_notes_how_to_seed(self, tmp_path):
        reg = MetricRegistry(str(tmp_path))
        text = render_markdown(build_dashboard(reg, {"accel": {"fig13.speedup": 3.0}}))
        assert "no committed baseline yet" in text
        assert "--bench-update" in text

    def test_write_dashboard_picks_format_by_extension(self, registry, tmp_path):
        md = write_dashboard(str(tmp_path / "d.md"), registry)
        assert "# Benchmark dashboard" in open(md).read()
        html_path = write_dashboard(str(tmp_path / "d.html"), registry)
        assert open(html_path).read().startswith("<!doctype html>")


def _telemetry_snapshots(n=3):
    from repro.obs.telemetry.registry import TelemetryRegistry

    reg = TelemetryRegistry(enabled=True)
    h = reg.histogram("train.batch_latency_ms", buckets=(1.0, 10.0, 100.0))
    g = reg.gauge("parallel.queue_depth")
    snaps = []
    for i in range(n):
        h.observe(5.0 * (i + 1))
        g.set(i, pool="plan")
        snaps.append(reg.snapshot(ts=float(i)))
    return snaps


class TestTelemetrySection:
    def test_renders_series_alerts_and_trend(self, registry):
        from repro.obs.telemetry.registry import TelemetryRegistry
        from repro.obs.telemetry.rules import AlertEngine, SloRule

        reg = TelemetryRegistry(enabled=True)
        reg.gauge("parallel.queue_depth").set(99, pool="plan")
        engine = AlertEngine(
            [SloRule("deep", "parallel.queue_depth", threshold=10.0)], reg
        )
        engine.evaluate(now=0.0)
        text = render_markdown(
            build_dashboard(
                registry,
                telemetry=_telemetry_snapshots(),
                alerts=engine.history,
            )
        )
        assert "## Live telemetry" in text
        assert "train.batch_latency_ms" in text
        assert "parallel.queue_depth[pool=plan]" in text
        assert "p99" in text
        assert "alerts: 1 active / 1 fired" in text
        assert "ACTIVE: [warn] deep" in text
        # time-evolution sparkline across the snapshots
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")

    def test_no_alerts_says_so(self, registry):
        text = render_markdown(
            build_dashboard(registry, telemetry=_telemetry_snapshots())
        )
        assert "alerts: none fired" in text

    def test_accepts_raw_snapshot_dicts(self, registry, tmp_path):
        docs = [s.as_dict() for s in _telemetry_snapshots()]
        path = write_dashboard(
            str(tmp_path / "d.html"), registry, telemetry=docs
        )
        assert "Live telemetry" in open(path).read()


class TestGateAdvisoryVisibility:
    """The host-mismatch downgrade must be visible in the dashboard,
    not only in the CLI gate report."""

    def _report_with_downgrade(self, tmp_path):
        from repro.obs.regress import TolerancePolicy

        reg = MetricRegistry(str(tmp_path))
        reg.update(
            "core",
            {"telemetry.p99_batch_ms[model=lenet5]": 20.0},
            stamp={"git_sha": "r1", "cpu_count": "64"},
        )
        current = {"core": {"telemetry.p99_batch_ms[model=lenet5]": 21.0}}
        # force the metric required so the cpu_count mismatch (64 in the
        # baseline vs this host) exercises the auto-downgrade path
        report = gate_metrics(
            current,
            reg,
            overrides={
                "telemetry.p99_batch_ms": TolerancePolicy(
                    direction="lower", rel_tol=0.9, abs_tol=5.0, required=True
                )
            },
        )
        return reg, current, report

    def test_advisory_status_suffix_and_downgrade_note(self, tmp_path):
        reg, current, report = self._report_with_downgrade(tmp_path)
        (verdict,) = [
            v for v in report.verdicts if v.metric.startswith("telemetry.")
        ]
        assert not verdict.policy.required
        assert (getattr(verdict, "note", "") or "").startswith("host mismatch")
        text = render_markdown(build_dashboard(reg, current, gate_report=report))
        assert "(advisory)" in text
        assert "auto-downgraded to advisory" in text
        assert "host mismatch" in text

    def test_no_downgrade_no_note(self, registry):
        current = {"core": {"table2.rate[k=3]": 0.42}}
        report = gate_metrics(current, registry)
        text = render_markdown(build_dashboard(registry, current, gate_report=report))
        assert "auto-downgraded" not in text
