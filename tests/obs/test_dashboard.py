"""Dashboard rendering: sparklines, markdown and HTML output."""

import pytest

from repro.obs.dashboard import (
    build_dashboard,
    render_html,
    render_markdown,
    sparkline,
    write_dashboard,
)
from repro.obs.metrics import MetricRegistry, OpCounters
from repro.obs.regress import gate_metrics


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series_is_mid_blocks(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_short_series_empty(self):
        assert sparkline([]) == ""
        assert sparkline([1.0]) == ""


@pytest.fixture
def registry(tmp_path):
    reg = MetricRegistry(str(tmp_path))
    reg.update("core", {"table2.rate[k=3]": 0.4}, stamp={"git_sha": "r1"})
    reg.update("core", {"table2.rate[k=3]": 0.42}, stamp={"git_sha": "r2"})
    return reg


class TestRendering:
    def test_markdown_sections(self, registry):
        current = {"core": {"table2.rate[k=3]": 0.5, "table2.new[k=5]": 1.0}}
        report = gate_metrics(current, registry)
        counters = OpCounters(mults=100, mults_eliminated=300,
                              half_additions=10, lar_reuse_hits=30)
        text = render_markdown(build_dashboard(registry, current, counters, report))
        assert "# Benchmark dashboard" in text
        assert "## Area `core`" in text
        assert "## Regression gate" in text
        assert "## Measured counters" in text
        assert "table2.rate[k=3]" in text
        # trend sparkline over history + current value
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")
        # counter-derived headline percentages
        assert "RME eliminated 75.0%" in text
        assert "LAR+GAR avoided 75.0%" in text
        # zero-valued counters are omitted from the table
        assert "dram_row_misses" not in text

    def test_html_is_escaped_and_complete(self, registry):
        current = {"core": {"table2.rate[k=3]": 0.42}}
        html_text = render_html(build_dashboard(registry, current))
        assert html_text.startswith("<!doctype html>")
        assert html_text.endswith("</body></html>")
        assert "<table>" in html_text
        assert "table2.rate[k=3]" in html_text

    def test_unseeded_area_notes_how_to_seed(self, tmp_path):
        reg = MetricRegistry(str(tmp_path))
        text = render_markdown(build_dashboard(reg, {"accel": {"fig13.speedup": 3.0}}))
        assert "no committed baseline yet" in text
        assert "--bench-update" in text

    def test_write_dashboard_picks_format_by_extension(self, registry, tmp_path):
        md = write_dashboard(str(tmp_path / "d.md"), registry)
        assert "# Benchmark dashboard" in open(md).read()
        html_path = write_dashboard(str(tmp_path / "d.html"), registry)
        assert open(html_path).read().startswith("<!doctype html>")
