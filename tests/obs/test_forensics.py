"""Run forensics: injected regressions must rank first, with causes.

The synthetic-trace tests inject a known slowdown / kernel swap /
span removal between run A and run B and assert :func:`diff_runs`
localizes exactly that change at the top of the ranking.  The bench
tests exercise :func:`diff_bench` against a throwaway BENCH_* registry.
"""

import json

import pytest

from repro.obs.attrib import build_attribution
from repro.obs.forensics import BenchDiff, RunDiff, diff_bench, diff_runs
from repro.obs.metrics import MetricRegistry
from repro.obs.tracer import Tracer


def span(name, ts, dur, cat="", tid=1, **attrs):
    return {
        "type": "span",
        "name": name,
        "ts_us": ts,
        "dur_us": dur,
        "tid": tid,
        "depth": 0,
        "parent": None,
        "cat": cat,
        "attrs": attrs,
    }


def _model_trace(slow_layer=None, factor=3.0, kernel="fused-f64"):
    """A three-layer forward; one layer optionally slowed by ``factor``."""
    walls = {"net.features.0": 400.0, "net.features.1": 300.0, "net.fc": 200.0}
    if slow_layer is not None:
        walls[slow_layer] *= factor
    events, ts = [], 0.0
    for name, dur in walls.items():
        events.append(span(name, ts, dur, cat="nn", kernel=kernel))
        ts += dur + 5.0
    events.append(span("net.forward", 0.0, ts, cat="nn"))
    return events


class TestDiffRuns:
    def test_injected_slowdown_is_top_ranked(self):
        """The acceptance property: a synthetic 3x slowdown on one layer
        must come back as the #1 entry, localized to that layer."""
        a = build_attribution(_model_trace())
        b = build_attribution(_model_trace(slow_layer="net.features.1"))
        diff = diff_runs(a, b)
        assert isinstance(diff, RunDiff)
        culprit = diff.culprit
        assert culprit is not None
        # net.forward (the container) grows by the same amount; the
        # layer itself must still outrank or tie every *other* layer
        layer_entries = [e for e in diff.entries if e.name != "net.forward"]
        assert layer_entries[0].name == "net.features.1"
        assert layer_entries[0].delta_us == pytest.approx(600.0)
        assert layer_entries[0].delta_rel == pytest.approx(2.0)
        # untouched layers sit at ~zero delta
        fc = next(e for e in diff.entries if e.name == "net.fc")
        assert fc.delta_us == pytest.approx(0.0)

    def test_added_and_removed_spans_are_noted(self):
        a = build_attribution([span("old.pass", 0, 50), span("both", 60, 10)])
        b = build_attribution([span("new.pass", 0, 70), span("both", 80, 10)])
        diff = diff_runs(a, b)
        by_name = {e.name: e for e in diff.entries}
        assert "added in B" in by_name["new.pass"].notes
        assert "removed in B" in by_name["old.pass"].notes
        assert by_name["new.pass"].wall_a_us == 0.0
        assert by_name["old.pass"].wall_b_us == 0.0

    def test_kernel_swap_is_annotated(self):
        a = build_attribution(_model_trace(kernel="fused-f64"))
        b = build_attribution(_model_trace(kernel="fused-f32-nhwc"))
        diff = diff_runs(a, b)
        e = next(x for x in diff.entries if x.name == "net.features.0")
        assert any("fused-f64 -> fused-f32-nhwc" in n for n in e.notes)

    def test_ops_drift_is_annotated(self):
        a = build_attribution([span("k", 0, 100, counters={"mults": 1000})])
        b = build_attribution([span("k", 0, 100, counters={"mults": 2000})])
        diff = diff_runs(a, b)
        e = next(x for x in diff.entries if x.name == "k")
        assert any(n.startswith("ops x2.00") for n in e.notes)

    def test_kernel_plan_change_surfaces_without_spans(self):
        """A compile.plan kernel swap on a module with no span of its
        own still produces a ranked entry — never silent."""

        def trace(kern):
            return [
                span("compile.pipeline", 0, 100, cat="compiler"),
                {
                    "type": "instant",
                    "name": "compile.plan",
                    "ts_us": 50,
                    "dur_us": None,
                    "tid": 1,
                    "depth": 1,
                    "parent": "compile.pipeline",
                    "cat": "compiler",
                    "attrs": {"kernels": {"features.0": kern}},
                },
            ]

        a = build_attribution(trace("fused-f64"))
        b = build_attribution(trace("fused-int8"))
        diff = diff_runs(a, b)
        e = next(x for x in diff.entries if x.name == "plan.features.0")
        assert e.notes == ["plan kernel fused-f64 -> fused-int8"]

    def test_min_delta_filter(self):
        a = build_attribution(_model_trace())
        b = build_attribution(_model_trace(slow_layer="net.features.0", factor=1.001))
        diff = diff_runs(a, b, min_delta_us=50.0)
        assert all(abs(e.delta_us) >= 50.0 or e.notes for e in diff.entries)

    def test_accepts_tracers_and_paths(self, tmp_path):
        ta, tb = Tracer(enabled=True), Tracer(enabled=True)
        with ta.span("work"):
            pass
        with tb.span("work"):
            pass
        diff = diff_runs(ta, tb)
        assert any(e.name == "work" for e in diff.entries) or diff.entries == []
        from repro.obs.export import write_jsonl

        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        write_jsonl(str(path_a), ta)
        write_jsonl(str(path_b), tb)
        diff2 = diff_runs(str(path_a), str(path_b))
        assert {e.name for e in diff2.entries} == {e.name for e in diff.entries}

    def test_render_mentions_totals_and_culprit(self):
        a = build_attribution(_model_trace())
        b = build_attribution(_model_trace(slow_layer="net.fc"))
        text = diff_runs(a, b).render()
        assert "net.fc" in text and "span coverage" in text


class TestDiffBench:
    def _seed(self, tmp_path):
        registry = MetricRegistry(str(tmp_path))
        # kernel.* figures live in the accel area, attrib/train in core
        registry.update("accel", {"kernel.fused_samples_per_sec": 100.0})
        registry.update(
            "core",
            {"attrib.span_coverage[model=lenet5]": 0.95, "train.loss": 0.5},
        )
        return registry

    def test_ranked_by_relative_movement(self, tmp_path):
        self._seed(tmp_path)
        jsonl = tmp_path / "metrics.jsonl"
        rows = [
            {"figure": "kernel", "metric": "fused_samples_per_sec", "value": 50.0},
            {"figure": "attrib", "metric": "span_coverage", "model": "lenet5", "value": 0.94},
        ]
        jsonl.write_text("".join(json.dumps(r) + "\n" for r in rows))
        diff = diff_bench(str(jsonl), root=str(tmp_path))
        assert isinstance(diff, BenchDiff)
        # the -50% throughput regression outranks the -1% coverage drift
        assert diff.entries[0].key == "kernel.fused_samples_per_sec"
        assert diff.entries[0].delta_rel == pytest.approx(-0.5)
        assert diff.entries[1].key == "attrib.span_coverage[model=lenet5]"
        assert "train.loss" in diff.missing_current

    def test_new_metric_lands_in_missing_baseline(self, tmp_path):
        self._seed(tmp_path)
        jsonl = tmp_path / "metrics.jsonl"
        jsonl.write_text(json.dumps({"figure": "attrib", "metric": "brand_new", "value": 1.0}) + "\n")
        diff = diff_bench(str(jsonl), root=str(tmp_path))
        assert "attrib.brand_new" in diff.missing_baseline
        assert diff.entries == []

    def test_render_smoke(self, tmp_path):
        self._seed(tmp_path)
        jsonl = tmp_path / "metrics.jsonl"
        jsonl.write_text(json.dumps({"figure": "train", "metric": "loss", "value": 0.6}) + "\n")
        text = diff_bench(str(jsonl), root=str(tmp_path)).render()
        assert "train.loss" in text and "+20.00" in text
