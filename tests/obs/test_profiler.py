"""Sampling profiler: attribution correctness, export formats, overhead."""

import re
import time

import numpy as np
import pytest

from repro.obs.telemetry.profiler import SamplingProfiler


def _spin_numpy(seconds: float) -> None:
    a = np.ones((96, 96))
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        np.dot(a, a)


def test_collects_samples_and_measures_overhead():
    with SamplingProfiler(interval_s=0.002) as prof:
        _spin_numpy(0.3)
    assert prof.sample_count > 20
    assert prof.elapsed_s >= 0.3
    # the sampler's own duty cycle is measured and small
    assert 0.0 < prof.overhead_fraction < 0.05


def test_top_frame_attributes_the_hot_function():
    with SamplingProfiler(interval_s=0.002) as prof:
        _spin_numpy(0.3)
    # other suites may leave idle helper threads behind (worker pools,
    # exporters) whose blocked stacks are sampled too — the hot function
    # must rank among the top leaves, not necessarily first
    tops = [frame for frame, _ in prof.top_functions(5)]
    assert any("_spin_numpy" in t or "numeric" in t for t in tops), tops


def test_collapsed_stack_format():
    with SamplingProfiler(interval_s=0.002) as prof:
        _spin_numpy(0.2)
    text = prof.collapsed()
    lines = text.strip().splitlines()
    assert lines
    for line in lines:
        # "frame;frame;frame count"
        assert re.fullmatch(r"\S.*\s\d+", line), line
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts, reverse=True)
    assert sum(counts) == sum(prof.stacks.values())


def test_write_collapsed_and_flamegraph(tmp_path):
    with SamplingProfiler(interval_s=0.002) as prof:
        _spin_numpy(0.2)
    cpath = str(tmp_path / "profile.txt")
    fpath = str(tmp_path / "profile.html")
    prof.write_collapsed(cpath)
    prof.write_flamegraph(fpath)
    assert open(cpath).read() == prof.collapsed()
    html = open(fpath).read()
    assert html.startswith("<!doctype html>")
    assert f"{prof.sample_count} samples" in html


def test_no_samples_is_not_an_error(tmp_path):
    prof = SamplingProfiler()
    assert prof.top_frame() is None
    assert prof.collapsed() == ""
    prof.write_flamegraph(str(tmp_path / "empty.html"))
    assert "no samples" in open(str(tmp_path / "empty.html")).read()


def test_profiler_skips_its_own_thread():
    with SamplingProfiler(interval_s=0.002) as prof:
        _spin_numpy(0.2)
    for stack in prof.stacks:
        assert not any(
            f.startswith("repro.obs.telemetry.profiler:_") for f in stack
        ), stack


def test_compiled_lenet5_forward_top_frame_is_a_kernel():
    """Acceptance criterion: profiling a lenet5 forward through the
    compiled (fused + lowered) pipeline must attribute the time to
    ``repro.core.kernels`` — the lowered kernels ARE the hot path."""
    from repro.compiler import CompileContext, mlcnn_pipeline
    from repro.models import build_model
    from repro.nn.tensor import Tensor, no_grad

    model = build_model("lenet5", seed=0)
    ctx = CompileContext(quant_bits=0)
    mlcnn_pipeline(bits=0, strict=False).run(model, ctx)
    model.eval()
    x = np.random.default_rng(0).normal(size=(16, 3, 32, 32))
    # warm caches so compilation/allocations don't pollute the profile
    with no_grad():
        model(Tensor(x))
    with SamplingProfiler(interval_s=0.002) as prof:
        deadline = time.perf_counter() + 0.6
        with no_grad():
            while time.perf_counter() < deadline:
                model(Tensor(x))
    assert prof.sample_count > 30
    repo_frames = [
        (frame, count)
        for frame, count in prof.top_functions(10)
        if frame.startswith("repro.")
    ]
    assert repo_frames, f"no repro frames in {prof.top_functions(10)}"
    top_frame, _ = repo_frames[0]
    assert top_frame.startswith("repro.core.kernels"), (
        f"hottest repro frame is {top_frame}, expected a repro.core.kernels "
        f"function; top10={prof.top_functions(10)}"
    )
