"""Per-module instrumentation: spans via named_modules, no code changes."""

import numpy as np

from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.obs.instrument import deinstrument_model, instrument_model
from repro.obs.tracer import Tracer


def tiny_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(4 * 8 * 8, 4, rng=rng),
    )


def batch(n=2):
    return Tensor(np.random.default_rng(1).normal(size=(n, 3, 16, 16)))


class TestForwardSpans:
    def test_every_module_gets_a_span(self):
        t = Tracer(enabled=True)
        model = instrument_model(tiny_model(), tracer=t, prefix="net")
        model(batch())
        names = {ev.name for ev in t.events}
        assert names == {
            "net.forward",
            "net.0.forward",
            "net.1.forward",
            "net.2.forward",
            "net.3.forward",
            "net.4.forward",
        }

    def test_children_nest_under_container(self):
        t = Tracer(enabled=True)
        model = instrument_model(tiny_model(), tracer=t, prefix="net")
        model(batch())
        for ev in t.events:
            if ev.name != "net.forward":
                assert ev.parent == "net.forward"
                assert ev.depth == 1

    def test_class_name_attr(self):
        t = Tracer(enabled=True)
        model = instrument_model(tiny_model(), tracer=t, prefix="net")
        model(batch())
        by_name = {ev.name: ev for ev in t.events}
        assert by_name["net.0.forward"].attrs["cls"] == "Conv2d"
        assert by_name["net.4.forward"].attrs["cls"] == "Linear"

    def test_default_root_label_is_class_name(self):
        t = Tracer(enabled=True)
        model = instrument_model(tiny_model(), tracer=t)
        model(batch())
        assert any(ev.name == "sequential.forward" for ev in t.events)

    def test_output_unchanged_by_instrumentation(self):
        x = batch()
        plain = tiny_model()(x).data
        t = Tracer(enabled=True)
        instrumented = instrument_model(tiny_model(), tracer=t)(x).data
        np.testing.assert_array_equal(plain, instrumented)

    def test_instrument_is_idempotent(self):
        t = Tracer(enabled=True)
        model = tiny_model()
        instrument_model(model, tracer=t, prefix="net")
        instrument_model(model, tracer=t, prefix="net")
        model(batch())
        names = [ev.name for ev in t.events if ev.name == "net.0.forward"]
        assert len(names) == 1


class TestBackwardSpans:
    def test_leaf_modules_record_backward(self):
        t = Tracer(enabled=True)
        model = instrument_model(tiny_model(), tracer=t, prefix="net")
        logits = model(batch())
        loss = F.cross_entropy(logits, np.array([0, 1]))
        loss.backward()
        names = {ev.name for ev in t.events}
        assert "net.0.backward" in names  # Conv2d
        assert "net.4.backward" in names  # Linear
        assert "net.forward.backward" not in names  # containers: forward only

    def test_gradients_unaffected(self):
        x = batch()
        labels = np.array([0, 1])
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        plain = tiny_model(rng_a)
        F.cross_entropy(plain(x), labels).backward()
        t = Tracer(enabled=True)
        traced = instrument_model(tiny_model(rng_b), tracer=t)
        F.cross_entropy(traced(x), labels).backward()
        for (_, pa), (_, pb) in zip(plain.named_parameters(), traced.named_parameters()):
            np.testing.assert_allclose(pa.grad, pb.grad)


class TestDisabledAndRemoval:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        model = instrument_model(tiny_model(), tracer=t)
        model(batch())
        assert t.events == []

    def test_deinstrument_restores_forward(self):
        t = Tracer(enabled=True)
        model = instrument_model(tiny_model(), tracer=t, prefix="net")
        deinstrument_model(model)
        t.clear()
        out = model(batch())
        assert t.events == []
        assert out.shape == (2, 4)
