"""OpCounters, the recorder, provenance, and the run registry."""

import json

import pytest

from repro.obs.metrics import (
    HISTORY_LIMIT,
    MetricRegistry,
    OpCounters,
    RunRecord,
    area_for_figure,
    collect_counters,
    get_recorder,
    load_metrics_jsonl,
    metric_key,
    provenance,
)


class TestCounters:
    def test_disabled_recorder_is_inert(self):
        rec = get_recorder()
        assert not rec.enabled
        rec.record(mults=100)  # no active sink: dropped, no error

    def test_collect_is_scoped(self):
        rec = get_recorder()
        with collect_counters() as oc:
            assert rec.enabled
            rec.record(mults=3, dram_bytes=1.5)
        assert not rec.enabled
        assert oc.mults == 3 and oc.dram_bytes == 1.5
        rec.record(mults=99)
        assert oc.mults == 3  # closed scope no longer receives

    def test_nested_collections_both_receive(self):
        rec = get_recorder()
        with collect_counters() as outer:
            rec.record(mults=1)
            with collect_counters() as inner:
                rec.record(mults=2)
        assert inner.mults == 2
        assert outer.mults == 3

    def test_derived_fields_and_merge(self):
        a = OpCounters(half_additions=2, full_additions=3, major_additions=5,
                       bias_additions=1, lar_reuse_hits=4, gar_reuse_hits=6)
        assert a.additions == 11
        assert a.reuse_hits == 10
        b = OpCounters(mults=7, half_additions=1)
        a.merge(b)
        assert a.mults == 7 and a.half_additions == 3
        doc = a.as_dict()
        assert doc["additions"] == 12 and doc["reuse_hits"] == 10

    def test_exception_still_pops_sink(self):
        rec = get_recorder()
        with pytest.raises(RuntimeError):
            with collect_counters():
                raise RuntimeError("boom")
        assert not rec.enabled


class TestProvenance:
    def test_fields_present(self):
        stamp = provenance()
        for key in ("git_sha", "timestamp", "host", "user", "python"):
            assert stamp[key]
        # inside this repo the SHA resolves to a real hex prefix
        assert stamp["git_sha"] == "unknown" or all(
            c in "0123456789abcdef" for c in stamp["git_sha"]
        )
        assert "T" in stamp["timestamp"]  # ISO-8601


class TestMetricNaming:
    def test_key_sorts_extras_and_drops_provenance(self):
        key = metric_key("fig13", "speedup", {"config": "mlcnn-fp32", "b": 1,
                                              "git_sha": "abc", "host": "h"})
        assert key == "fig13.speedup[b=1][config=mlcnn-fp32]"

    def test_area_mapping(self):
        assert area_for_figure("fig13") == "accel"
        assert area_for_figure("fig15") == "accel"
        assert area_for_figure("kernel") == "accel"
        assert area_for_figure("table7") == "accel"
        assert area_for_figure("operating") == "accel"
        assert area_for_figure("fig14") == "core"
        assert area_for_figure("table2") == "core"
        assert area_for_figure("ablation") == "core"

    def test_load_jsonl(self, tmp_path):
        p = tmp_path / "m.jsonl"
        rows = [
            {"figure": "fig13", "metric": "speedup", "value": 3.2, "config": "a",
             "git_sha": "deadbeef", "host": "ci"},
            {"figure": "table2", "metric": "lar_reduction_rate", "value": 0.228, "k": 11},
            # re-emitted key keeps the last value
            {"figure": "fig13", "metric": "speedup", "value": 3.4, "config": "a"},
        ]
        p.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        per_area = load_metrics_jsonl(str(p))
        assert per_area["accel"]["fig13.speedup[config=a]"] == 3.4
        assert per_area["core"]["table2.lar_reduction_rate[k=11]"] == 0.228

    def test_load_jsonl_rejects_garbage(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"figure": "x"\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_metrics_jsonl(str(p))
        p.write_text('{"metric": "no-figure", "value": 1}\n')
        with pytest.raises(ValueError, match="figure/metric/value"):
            load_metrics_jsonl(str(p))


class TestRegistry:
    def test_roundtrip_and_history_rotation(self, tmp_path):
        reg = MetricRegistry(str(tmp_path))
        assert reg.baseline("core") is None
        assert reg.areas() == []

        reg.update("core", {"m.a": 1.0}, stamp={"git_sha": "run1"})
        reg.update("core", {"m.a": 2.0, "m.b": 5.0}, stamp={"git_sha": "run2"})
        reg.update("core", {"m.a": 3.0}, stamp={"git_sha": "run3"})

        assert reg.areas() == ["core"]
        assert reg.baseline("core") == {"m.a": 3.0}
        history = reg.history("core")
        assert [r.provenance["git_sha"] for r in history] == ["run1", "run2", "run3"]
        assert isinstance(history[0], RunRecord)
        assert reg.series("core", "m.a") == [("run1", 1.0), ("run2", 2.0), ("run3", 3.0)]
        # m.b only existed in run2
        assert reg.series("core", "m.b") == [("run2", 5.0)]

    def test_history_is_bounded(self, tmp_path):
        reg = MetricRegistry(str(tmp_path))
        for i in range(HISTORY_LIMIT + 5):
            reg.update("accel", {"x": float(i)}, stamp={"git_sha": f"r{i}"})
        doc = reg.load("accel")
        assert len(doc["history"]) == HISTORY_LIMIT

    def test_file_is_stable_json(self, tmp_path):
        reg = MetricRegistry(str(tmp_path))
        path = reg.update("core", {"b": 2.0, "a": 1.0}, stamp={"git_sha": "s"})
        text = open(path).read()
        assert text.index('"a"') < text.index('"b"')  # sorted keys: clean diffs
        assert json.loads(text)["area"] == "core"
