"""The `python -m repro.experiments` CLI."""

import pytest

from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_runs_selected_fast_experiments(self, capsys):
        assert main(["--only", "table2", "limits"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Eqs. 4-7" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_accuracy_names_require_flag_or_only(self, capsys):
        # selecting fig3 via --only auto-includes the accuracy set; use
        # the tiniest possible check by just validating name resolution
        with pytest.raises(SystemExit):
            main(["--only", "not-an-experiment", "--accuracy"])
