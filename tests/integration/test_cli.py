"""The `python -m repro.experiments` CLI."""

import pytest

from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_runs_selected_fast_experiments(self, capsys):
        assert main(["--only", "table2", "limits"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Eqs. 4-7" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_accuracy_names_require_flag_or_only(self, capsys):
        # selecting fig3 via --only auto-includes the accuracy set; use
        # the tiniest possible check by just validating name resolution
        with pytest.raises(SystemExit):
            main(["--only", "not-an-experiment", "--accuracy"])

    def test_list_prints_names_and_exits(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig13" in out
        assert "fig3" in out  # accuracy experiments listed too
        assert "Table II" not in out  # nothing actually ran

    def test_total_time_summary_printed(self, capsys):
        assert main(["--only", "limits"]) == 0
        out = capsys.readouterr().out
        assert "== total: 1 experiment(s) in" in out

    def test_pipeline_flag_compiles_model(self, capsys):
        assert main(["--pipeline", "lenet5", "--bits", "8", "--report"]) == 0
        out = capsys.readouterr().out
        assert "compiled lenet5" in out
        assert "== Compile:" in out  # --report prints the per-pass table
        assert "fuse" in out and "quantize" in out

    def test_pipeline_unknown_model_errors(self, capsys):
        assert main(["--pipeline", "not-a-model"]) == 2
