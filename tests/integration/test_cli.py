"""The `python -m repro.experiments` CLI."""

import json

import pytest

from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_runs_selected_fast_experiments(self, capsys):
        assert main(["--only", "table2", "limits"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Eqs. 4-7" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_accuracy_names_require_flag_or_only(self, capsys):
        # selecting fig3 via --only auto-includes the accuracy set; use
        # the tiniest possible check by just validating name resolution
        with pytest.raises(SystemExit):
            main(["--only", "not-an-experiment", "--accuracy"])

    def test_list_prints_names_and_exits(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig13" in out
        assert "fig3" in out  # accuracy experiments listed too
        assert "Table II" not in out  # nothing actually ran

    def test_total_time_summary_printed(self, capsys):
        assert main(["--only", "limits"]) == 0
        out = capsys.readouterr().out
        assert "== total: 1 experiment(s) in" in out

    def test_pipeline_flag_compiles_model(self, capsys):
        assert main(["--pipeline", "lenet5", "--bits", "8", "--report"]) == 0
        out = capsys.readouterr().out
        assert "compiled lenet5" in out
        assert "== Compile:" in out  # --report prints the per-pass table
        assert "fuse" in out and "quantize" in out

    def test_pipeline_unknown_model_errors(self, capsys):
        assert main(["--pipeline", "not-a-model"]) == 2


class TestTraceFlags:
    @pytest.fixture(autouse=True)
    def _clean_global_tracer(self):
        yield
        from repro.obs import get_tracer

        get_tracer().disable()
        get_tracer().clear()

    def test_pipeline_chrome_trace_is_unified(self, tmp_path, capsys):
        """The acceptance command: compiler-pass, per-layer forward and
        simulator spans all land in one Chrome trace."""
        path = tmp_path / "out.json"
        assert main(
            ["--pipeline", "lenet5", "--trace", str(path), "--trace-format", "chrome"]
        ) == 0
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert {"ph", "ts", "name"} <= set(ev)
            if ev["ph"] == "X":
                assert "dur" in ev
        names = {ev["name"] for ev in events}
        assert any(n.startswith("compile.pass.") for n in names)  # compiler
        assert "compile.pipeline" in names
        assert any(n.startswith("lenet5.") and n.endswith(".forward") for n in names)
        assert "sim.network" in names and "sim.layer" in names  # simulator
        assert "trace:" in capsys.readouterr().out

    def test_suite_jsonl_trace(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main(["--only", "limits", "--trace", str(path)]) == 0
        docs = [json.loads(line) for line in path.read_text().strip().split("\n")]
        names = {d["name"] for d in docs}
        assert "experiments.suite" in names
        assert "experiment.limits" in names

    def test_trace_summary_prints_table(self, capsys):
        assert main(["--only", "limits", "--trace-summary"]) == 0
        out = capsys.readouterr().out
        assert "== Trace:" in out
        assert "experiment.limits" in out

    def test_tracer_disabled_after_run(self, tmp_path):
        from repro.obs import get_tracer

        assert main(["--only", "limits", "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert not get_tracer().enabled
