"""End-to-end pipelines: the full MLCNN workflow on small workloads."""

import numpy as np
import pytest

from repro import (
    QuantConfig,
    build_model,
    compare_networks,
    fuse_network,
    get_config,
    quantize_model,
    reorder_activation_pooling,
    simulate_network,
)
from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import specs
from repro.nn.tensor import Tensor, no_grad
from repro.train import TrainConfig, Trainer, evaluate


@pytest.fixture(scope="module")
def workload():
    ds = make_synth_cifar(
        SyntheticImageConfig(num_classes=4, samples_per_class=24, image_size=16, seed=42)
    )
    return train_val_split(ds, 0.25, seed=42)


def train(model, workload, epochs=8, lr=0.03):
    train_set, val_set = workload
    trainer = Trainer(
        model, train_set, val_set, TrainConfig(epochs=epochs, batch_size=16, lr=lr, seed=0)
    )
    trainer.fit()
    return trainer.best_top1


class TestFullMLCNNPipeline:
    def test_reorder_retrain_fuse_preserves_accuracy(self, workload):
        """The paper's pipeline: reorder -> retrain -> fuse.  Fusion must
        leave validation accuracy bit-identical (same function), and the
        retrained reordered model must stay close to the original."""
        _, val_set = workload
        original = build_model("lenet5", num_classes=4, image_size=16, seed=1)
        acc_original = train(original, workload)

        reordered = build_model("lenet5", num_classes=4, image_size=16, seed=1)
        reorder_activation_pooling(reordered)
        acc_reordered = train(reordered, workload)

        # marginal accuracy change claim (generous tolerance at this scale)
        assert abs(acc_original - acc_reordered) < 0.25
        assert acc_reordered > 0.5  # both clearly above 0.25 chance

        _, top1_before, _ = evaluate(reordered, val_set)
        fuse_network(reordered)
        _, top1_after, _ = evaluate(reordered, val_set)
        assert top1_after == pytest.approx(top1_before)

    def test_quantized_mlcnn_pipeline(self, workload):
        """Reordered + INT8-quantized model trains and stays usable."""
        model = build_model("lenet5", num_classes=4, image_size=16, seed=1)
        reorder_activation_pooling(model)
        quantize_model(model, QuantConfig(8, 8))
        acc = train(model, workload)
        assert acc > 0.4  # chance is 0.25

    def test_fused_and_unfused_agree_after_training(self, workload):
        """Training THROUGH the fused kernel yields the same network as
        the unfused reordered execution (weights shared)."""
        _, val_set = workload
        model = build_model("lenet5", num_classes=4, image_size=16, seed=2)
        reorder_activation_pooling(model)
        _, replaced = fuse_network(model)
        train(model, workload, epochs=4)
        x = Tensor(val_set.images[:8])
        unfused = build_model("lenet5", num_classes=4, image_size=16, seed=2)
        reorder_activation_pooling(unfused)
        # same construction order -> same parameter order; copy values
        for src, dst in zip(model.parameters(), unfused.parameters()):
            dst.data[...] = src.data
        with no_grad():
            fused_out = model(x).data
            unfused_out = unfused(x).data
        np.testing.assert_allclose(fused_out, unfused_out, atol=1e-9)


class TestAcceleratorPipeline:
    def test_speedup_consistent_with_flop_reduction(self):
        """Network-level: cycle reduction never exceeds total-op
        reduction by more than the memory-savings factor."""
        layer_specs = specs.get_specs("vgg16")
        cmp = compare_networks(layer_specs, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
        from repro.core.opcount import network_ops

        ops_base = network_ops(layer_specs, fused=False).total
        ops_fused = network_ops(layer_specs, fused=True).total
        assert 1.0 < cmp.speedup < 1.5 * ops_base / ops_fused

    def test_all_models_simulate_on_all_configs(self):
        for model in specs.MODEL_SPECS:
            layer_specs = specs.get_specs(model)
            for cfg in ("dcnn-fp32", "mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"):
                res = simulate_network(layer_specs, get_config(cfg))
                assert res.cycles > 0 and np.isfinite(res.energy.total_j)


class TestExperimentHarness:
    def test_analytic_reports_render(self):
        from repro.experiments import (
            equation_limits,
            table2_lar_filter,
            table3_lar_stride,
            table4_gar_filter,
            table5_gar_stride,
            table6_gar_inputdim,
        )

        for fn in (
            table2_lar_filter,
            table3_lar_stride,
            table4_gar_filter,
            table5_gar_stride,
            table6_gar_inputdim,
            equation_limits,
        ):
            rep = fn()
            text = rep.render()
            assert rep.experiment in text
            assert rep.rows

    def test_table2_rows_match_paper_columns(self):
        from repro.experiments import table2_lar_filter

        for row in table2_lar_filter().rows:
            # ours == paper for both counts
            assert row[1] == row[4] and row[2] == row[5]

    def test_accelerator_reports_render(self):
        from repro.experiments import ablation_reuse, fig14_flops_reduction, table7_configs

        for fn in (table7_configs, fig14_flops_reduction, ablation_reuse):
            rep = fn()
            assert rep.rows

    def test_accuracy_experiment_tiny_budget(self):
        """Fig. 3 harness runs end-to-end on a minimal budget."""
        from repro.experiments.accuracy import AccuracyBudget, fig3_reordering_accuracy

        tiny = AccuracyBudget(
            epochs=1,
            samples_per_class_10=6,
            samples_per_class_100=1,
            image_size=32,
            widths={"lenet5": 0.25},
        )
        rep = fig3_reordering_accuracy(models=("lenet5",), class_counts=(10,), budget=tiny)
        assert len(rep.rows) == 1
