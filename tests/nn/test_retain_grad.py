"""Leaf-only gradient accumulation and retain_grad()."""

import numpy as np

from repro.nn.tensor import Tensor


class TestLeafGradPolicy:
    def test_leaves_accumulate(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * 3).backward(np.ones(1))
        assert np.allclose(x.grad, 3.0)

    def test_intermediates_do_not_accumulate(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3
        (y * 2).backward(np.ones(1))
        assert y.grad is None
        assert np.allclose(x.grad, 6.0)

    def test_retain_grad_opts_in(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * 3).retain_grad()
        (y * 2).backward(np.ones(1))
        assert np.allclose(y.grad, 2.0)
        assert np.allclose(x.grad, 6.0)

    def test_parameters_are_leaves(self):
        from repro.nn import Conv2d

        conv = Conv2d(1, 1, 3, rng=np.random.default_rng(0))
        assert conv.weight._is_leaf
        out = conv(Tensor(np.random.default_rng(1).normal(size=(1, 1, 5, 5))))
        assert not out._is_leaf
        out.sum().backward()
        assert conv.weight.grad is not None

    def test_memory_not_held_on_deep_chain(self):
        """A long chain of intermediates keeps grads only at the ends."""
        x = Tensor(np.ones(10), requires_grad=True)
        y = x
        nodes = []
        for _ in range(50):
            y = y * 1.01
            nodes.append(y)
        y.sum().backward()
        assert x.grad is not None
        assert all(n.grad is None for n in nodes)
