"""float32 training mode (Module.to_dtype)."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import BatchNorm2d, Conv2d, Sequential, functional as F
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor, no_grad


class TestToDtype:
    def test_parameters_cast(self):
        model = build_model("lenet5")
        model.to_dtype(np.float32)
        for _, p in model.named_parameters():
            assert p.data.dtype == np.float32

    def test_buffers_cast(self):
        model = Sequential(BatchNorm2d(4))
        model.to_dtype(np.float32)
        assert model[0].running_mean.dtype == np.float32
        # the attribute alias is replaced too
        assert model[0]._buffers["running_mean"].dtype == np.float32

    def test_forward_stays_float32(self):
        model = build_model("lenet5").to_dtype(np.float32)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32))
        with no_grad():
            out = model(x)
        assert out.dtype == np.float32

    def test_float32_matches_float64_closely(self):
        x64 = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        m64 = build_model("lenet5", seed=3)
        m32 = build_model("lenet5", seed=3).to_dtype(np.float32)
        with no_grad():
            y64 = m64(Tensor(x64)).data
            y32 = m32(Tensor(x64.astype(np.float32))).data
        np.testing.assert_allclose(y32, y64, rtol=1e-3, atol=1e-3)

    def test_training_step_in_float32(self):
        model = build_model("lenet5", num_classes=4, image_size=16).to_dtype(np.float32)
        opt = SGD(model.parameters(), lr=0.01)
        x = Tensor(np.random.default_rng(1).normal(size=(8, 3, 16, 16)).astype(np.float32))
        loss = F.cross_entropy(model(x), np.zeros(8, dtype=int))
        loss.backward()
        for _, p in model.named_parameters():
            assert p.grad is not None
            assert p.grad.dtype == np.float32
        opt.step()
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            build_model("lenet5").to_dtype(np.int32)

    def test_cast_back_to_float64(self):
        model = build_model("lenet5").to_dtype(np.float32).to_dtype(np.float64)
        assert all(p.data.dtype == np.float64 for p in model.parameters())

    def test_batchnorm_forward_after_cast(self):
        model = Sequential(Conv2d(1, 2, 3, rng=np.random.default_rng(0)), BatchNorm2d(2))
        model.to_dtype(np.float32)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 1, 6, 6)).astype(np.float32))
        out = model(x)
        assert np.isfinite(out.data).all()
