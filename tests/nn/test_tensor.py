"""Autograd tensor: arithmetic, broadcasting, graph mechanics."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_array_preserves_float32(self):
        t = Tensor(np.zeros((2, 2), dtype=np.float32))
        assert t.dtype == np.float32

    def test_int_input_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype == np.float64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_scalar(self):
        assert Tensor([[3.5]]).item() == 3.5

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmeticValues:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((2 - a).data, [1, 0])
        assert np.allclose((3 * a).data, [3, 6])
        assert np.allclose((2 / a).data, [2, 1])

    def test_neg_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2, 3])
        assert np.allclose((a ** 2).data, [4, 9])

    def test_matmul_2d(self):
        a = Tensor(np.eye(3) * 2)
        b = Tensor(np.arange(9.0).reshape(3, 3))
        assert np.allclose((a @ b).data, 2 * b.data)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestBackwardBasics:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_div_grad(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward(np.ones(1))
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_chain_rule(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * 2 + 1) ** 2  # y = (2x+1)^2, dy/dx = 4(2x+1) = 28
        y.backward(np.ones(1))
        assert np.allclose(x.grad, [28.0])

    def test_diamond_graph_accumulates(self):
        # z = x*x uses x twice; dz/dx = 2x
        x = Tensor([3.0], requires_grad=True)
        (x * x).backward(np.ones(1))
        assert np.allclose(x.grad, [6.0])

    def test_repeated_backward_accumulates_into_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward(np.ones(1))
        (x * 2).backward(np.ones(1))
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward(np.ones(1))
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_rejects_wrong_grad_shape(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_matmul_grad(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, b.data.sum(axis=1, keepdims=True).T.repeat(2, 0))
        assert np.allclose(b.grad, a.data.sum(axis=0)[:, None].repeat(2, 1))

    def test_vector_matmul_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a @ b).backward(np.ones(()))
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)


class TestBroadcasting:
    def test_broadcast_add_grad_sums_over_expanded_axes(self):
        a = Tensor(np.zeros((3, 4)), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(b.grad, 3.0)

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a * 3.0).sum().backward()
        assert np.allclose(a.grad, 3.0)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        s = x.sum(axis=1, keepdims=True)
        assert s.shape == (2, 1)
        s.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_grad(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 0.25)

    def test_mean_over_axis(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        m = x.mean(axis=1)
        assert m.shape == (2,)
        m.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        y = x.reshape(2, 3).reshape(-1)
        (y * y).sum().backward()
        assert np.allclose(x.grad, 2 * x.data)

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.T
        assert y.shape == (3, 2)
        (y * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([0, 0, 3])].sum().backward()
        assert np.allclose(x.grad, [2, 0, 0, 1, 0])

    def test_max_grad_splits_ties(self):
        x = Tensor(np.array([1.0, 2.0, 2.0]), requires_grad=True)
        x.max().backward(np.ones(()))
        assert np.allclose(x.grad, [0, 0.5, 0.5])

    def test_max_axis_keepdims(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        m = x.max(axis=1, keepdims=True)
        assert m.shape == (2, 1)
        m.sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])


class TestElementwise:
    def test_relu_values_and_grad(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        y = x.relu()
        assert np.allclose(y.data, [0, 0, 2])
        y.sum().backward()
        assert np.allclose(x.grad, [0, 0, 1])

    def test_exp_log_inverse(self):
        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        y = x.exp().log()
        assert np.allclose(y.data, x.data)

    def test_sigmoid_range_and_grad(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        y = x.sigmoid()
        assert np.allclose(y.data, 0.5)
        y.backward(np.ones(1))
        assert np.allclose(x.grad, 0.25)

    def test_tanh_grad(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        x.tanh().backward(np.ones(1))
        assert np.allclose(x.grad, 1.0)

    def test_abs_grad(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1, 1])

    def test_clip_grad_masks_outside(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0, 1, 0])


class TestGradMode:
    def test_no_grad_disables_graph(self):
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            y = x * 2
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3).detach() * 2
        assert not y.requires_grad

    def test_astype_grad_flows(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x.astype(np.float32)
        assert y.dtype == np.float32
        (y * 2).sum().backward()
        assert np.allclose(x.grad, 2.0)


class TestIndexingBackward:
    def test_basic_slice(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        assert np.allclose(x.grad, expected)

    def test_strided_slice(self):
        x = Tensor(np.arange(8.0), requires_grad=True)
        x[::2].sum().backward()
        assert np.allclose(x.grad, [1, 0, 1, 0, 1, 0, 1, 0])

    def test_2d_row_selection(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        x[1].sum().backward()
        assert np.allclose(x.grad[1], 1.0)
        assert np.allclose(x.grad[[0, 2]], 0.0)

    def test_boolean_mask(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        mask = np.array([True, False, True])
        x[mask].sum().backward()
        assert np.allclose(x.grad, [1, 0, 1])

    def test_transpose_with_axes(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        y = x.transpose(2, 0, 1)
        assert y.shape == (4, 2, 3)
        (y * 2).sum().backward()
        assert np.allclose(x.grad, 2.0)

    def test_negative_reshape_dim(self):
        x = Tensor(np.arange(12.0), requires_grad=True)
        y = x.reshape(3, -1)
        assert y.shape == (3, 4)
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)
