"""Module system: registration, traversal, serialization, layers."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestModulePlumbing:
    def test_parameters_collected_recursively(self, rng):
        m = Sequential(Conv2d(1, 2, 3, rng=rng), ReLU(), Linear(4, 5, rng=rng))
        names = [n for n, _ in m.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self, rng):
        m = Linear(10, 5, rng=rng)
        assert m.num_parameters() == 10 * 5 + 5

    def test_train_eval_recursive(self, rng):
        m = Sequential(Dropout(0.5), Sequential(Dropout(0.2)))
        m.eval()
        assert all(not mod.training for _, mod in m.named_modules())
        m.train()
        assert all(mod.training for _, mod in m.named_modules())

    def test_zero_grad_clears_all(self, rng):
        m = Linear(3, 2, rng=rng)
        out = m(Tensor(rng.normal(size=(4, 3))))
        out.sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None and m.bias.grad is None

    def test_state_dict_roundtrip(self, rng):
        m1 = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2), Linear(4, 2, rng=rng))
        m2 = Sequential(
            Conv2d(1, 2, 3, rng=np.random.default_rng(99)),
            BatchNorm2d(2),
            Linear(4, 2, rng=np.random.default_rng(99)),
        )
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_includes_buffers(self, rng):
        m = BatchNorm2d(3)
        sd = m.state_dict()
        assert "running_mean" in sd and "running_var" in sd

    def test_load_state_dict_missing_key_raises(self, rng):
        m = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        m = Linear(2, 2, rng=rng)
        sd = m.state_dict()
        sd["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_repr_contains_children(self, rng):
        r = repr(Sequential(Conv2d(1, 2, 3, rng=rng)))
        assert "Conv2d" in r

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))


class TestContainers:
    def test_sequential_order(self, rng):
        m = Sequential(Flatten(), Linear(4, 4, rng=rng), ReLU())
        out = m(Tensor(rng.normal(size=(2, 1, 2, 2))))
        assert out.shape == (2, 4)
        assert (out.data >= 0).all()

    def test_sequential_indexing_and_append(self, rng):
        m = Sequential(ReLU())
        m.append(Tanh())
        assert len(m) == 2
        assert isinstance(m[1], Tanh)

    def test_module_list(self, rng):
        ml = ModuleList([ReLU(), Sigmoid()])
        assert len(ml) == 2
        assert [type(x).__name__ for x in ml] == ["ReLU", "Sigmoid"]
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros(1)))


class TestLayers:
    def test_conv2d_shapes_and_config(self, rng):
        c = Conv2d(3, 8, (3, 5), stride=(1, 2), padding=(1, 2), rng=rng)
        out = c(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 4)

    def test_conv2d_no_bias(self, rng):
        c = Conv2d(1, 1, 3, bias=False, rng=rng)
        assert c.bias is None
        assert len(c.parameters()) == 1

    def test_linear_forward(self, rng):
        l = Linear(4, 2, rng=rng)
        out = l(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x

    def test_pool_layers(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 8, 8)))
        assert AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert MaxPool2d(3, 1, padding=1)(x).shape == (1, 2, 8, 8)

    def test_batchnorm_layer_updates_buffers(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(3.0, 1.0, size=(8, 2, 4, 4)))
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)
        bn.eval()
        before = bn.running_mean.copy()
        bn(x)
        np.testing.assert_array_equal(bn.running_mean, before)

    def test_dropout_train_vs_eval(self, rng):
        d = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((10, 10)))
        train_out = d(x).data
        d.eval()
        eval_out = d(x).data
        assert (eval_out == 1.0).all()
        assert (train_out == 0.0).any()

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_activations(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert np.allclose(ReLU()(x).data, [0, 1])
        assert np.allclose(Tanh()(x).data, np.tanh([-1, 1]))
        assert np.allclose(Sigmoid()(x).data, 1 / (1 + np.exp([1, -1])))


class TestTrainingIntegration:
    def test_gradients_reach_all_parameters(self, rng):
        m = Sequential(
            Conv2d(1, 2, 3, padding=1, rng=rng),
            BatchNorm2d(2),
            ReLU(),
            AvgPool2d(2),
            Flatten(),
            Linear(2 * 4 * 4, 3, rng=rng),
        )
        out = m(Tensor(rng.normal(size=(2, 1, 8, 8))))
        (out ** 2).sum().backward()
        for name, p in m.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            assert np.isfinite(p.grad).all()
