"""Optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, CosineLR, StepLR
from repro.nn.tensor import Tensor


def quadratic_loss(params):
    """f(x) = ||x - 3||^2, minimized at 3."""
    x = params[0]
    return ((x - 3.0) ** 2).sum()


def run_steps(opt, params, steps=200):
    for _ in range(steps):
        loss = quadratic_loss(params)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return quadratic_loss(params).item()


class TestSGD:
    def test_converges_on_quadratic(self):
        x = Tensor(np.array([10.0, -5.0]), requires_grad=True)
        assert run_steps(SGD([x], lr=0.1), [x]) < 1e-6

    def test_momentum_converges(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        assert run_steps(SGD([x], lr=0.05, momentum=0.9), [x]) < 1e-6

    def test_nesterov_converges(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        assert run_steps(SGD([x], lr=0.05, momentum=0.9, nesterov=True), [x]) < 1e-6

    def test_weight_decay_shrinks_solution(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        run_steps(SGD([x], lr=0.1, weight_decay=1.0), [x])
        # decay pulls the optimum below 3
        assert 0 < x.data[0] < 3.0

    def test_skips_params_without_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x, y], lr=0.1)
        loss = (x * 2).sum()
        loss.backward()
        opt.step()
        assert y.data[0] == 1.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        x = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=-1.0)

    def test_rejects_bad_momentum(self):
        x = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        x = Tensor(np.array([10.0, -4.0]), requires_grad=True)
        assert run_steps(Adam([x], lr=0.2), [x], steps=400) < 1e-4

    def test_bias_correction_first_step(self):
        # After one step with |grad| >> eps, Adam moves by ~lr.
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        loss = quadratic_loss([x])
        loss.backward()
        opt.step()
        assert np.isclose(x.data[0], 10.0 - 0.1, atol=1e-3)

    def test_weight_decay(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        run_steps(Adam([x], lr=0.1, weight_decay=1.0), [x], steps=500)
        assert x.data[0] < 3.0


class TestSchedules:
    def _opt(self):
        x = Tensor(np.zeros(1), requires_grad=True)
        return SGD([x], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]

    def test_cosine_lr_endpoints(self):
        opt = self._opt()
        sched = CosineLR(opt, t_max=10, min_lr=0.1)
        assert np.isclose(sched.lr_at(0), 1.0)
        assert np.isclose(sched.lr_at(10), 0.1)
        assert np.isclose(sched.lr_at(5), 0.55)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sched = CosineLR(opt, t_max=20)
        vals = [sched.lr_at(e) for e in range(21)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_step_lr_validates(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)

    def test_cosine_validates(self):
        with pytest.raises(ValueError):
            CosineLR(self._opt(), t_max=0)


class TestInit:
    def test_kaiming_normal_std(self):
        from repro.nn import init

        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng)
        assert np.isclose(w.std(), np.sqrt(2.0 / 128), rtol=0.1)

    def test_xavier_uniform_bound(self):
        from repro.nn import init

        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64, 64), rng)
        bound = np.sqrt(6.0 / 128)
        assert np.abs(w).max() <= bound

    def test_conv_fan_computation(self):
        from repro.nn.init import _fan

        assert _fan((16, 8, 3, 3)) == (72, 144)
        assert _fan((10, 20)) == (20, 10)
        with pytest.raises(ValueError):
            _fan((1, 2, 3))
