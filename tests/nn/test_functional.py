"""Functional kernels: shapes, values, reference cross-checks."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestOutputShapes:
    @pytest.mark.parametrize(
        "h,w,k,s,p,expected",
        [
            (32, 32, 3, 1, 1, (32, 32)),
            (32, 32, 3, 2, 1, (16, 16)),
            (28, 28, 5, 1, 0, (24, 24)),
            (7, 9, 3, 2, 0, (3, 4)),
            (8, 8, 8, 1, 0, (1, 1)),
        ],
    )
    def test_conv_output_shape(self, h, w, k, s, p, expected):
        assert F.conv2d_output_shape(h, w, k, s, p) == expected

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            F.conv2d_output_shape(4, 4, 5, 1, 0)

    def test_conv2d_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 10, 10)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 5, 5)

    def test_conv2d_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(1, 3, 8, 8))), Tensor(rng.normal(size=(2, 4, 3, 3))))

    def test_im2col_requires_nchw(self, rng):
        with pytest.raises(ValueError):
            F.im2col(rng.normal(size=(3, 8, 8)), 3)


class TestConvValues:
    def test_matches_scipy_correlate_single_channel(self, rng):
        x = rng.normal(size=(6, 6))
        w = rng.normal(size=(3, 3))
        ours = F.conv2d(Tensor(x[None, None]), Tensor(w[None, None])).data[0, 0]
        ref = signal.correlate2d(x, w, mode="valid")
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_multi_channel_sums_over_inputs(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(1, 3, 3, 3))
        ours = F.conv2d(Tensor(x), Tensor(w)).data[0, 0]
        ref = sum(
            signal.correlate2d(x[0, c], w[0, c], mode="valid") for c in range(3)
        )
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_bias_broadcasts_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((3, 1, 2, 2)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        out = F.conv2d(x, w, b).data
        for m in range(3):
            assert np.allclose(out[0, m], m + 1.0)

    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_stride_subsamples(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        full = F.conv2d(Tensor(x), Tensor(w)).data
        strided = F.conv2d(Tensor(x), Tensor(w), stride=2).data
        np.testing.assert_allclose(strided[0, 0], full[0, 0, ::2, ::2], atol=1e-12)


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        expected = np.array([[2.5, 4.5], [10.5, 12.5]])
        np.testing.assert_allclose(out[0, 0], expected)

    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_stride_defaults_to_kernel(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 6)))
        assert F.avg_pool2d(x, 3).shape == (1, 1, 2, 2)

    def test_overlapping_pool_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 7, 7)))
        assert F.max_pool2d(x, 3, stride=1).shape == (1, 1, 5, 5)

    def test_max_pool_padding_never_wins(self):
        x = -np.ones((1, 1, 4, 4))
        out = F.max_pool2d(Tensor(x), 3, 2, padding=1).data
        assert (out == -1).all()

    def test_avg_pool_padding_counts_zeros(self):
        x = np.ones((1, 1, 2, 2))
        out = F.avg_pool2d(Tensor(x), 2, 2, padding=1).data
        # each corner window holds one 1 and three zeros
        np.testing.assert_allclose(out[0, 0], 0.25)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), atol=1e-12)

    def test_pool_floor_crops_remainder(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        assert F.avg_pool2d(x, 2).shape == (1, 1, 2, 2)


class TestActivationAndLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        p = F.softmax(Tensor(rng.normal(size=(5, 7)) * 10)).data
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-12)
        assert (p >= 0).all()

    def test_softmax_shift_invariant(self, rng):
        x = rng.normal(size=(2, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), atol=1e-10
        )

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert np.isclose(loss.item(), np.log(10))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((4, 3))), np.zeros((4, 3)))

    def test_one_hot(self):
        oh = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1]])

    def test_accuracy_topk(self):
        logits = np.array([[0.1, 0.9, 0.0], [0.8, 0.1, 0.1], [0.2, 0.3, 0.5]])
        targets = np.array([1, 0, 0])
        assert F.accuracy_topk(logits, targets, k=1) == pytest.approx(2 / 3)
        assert F.accuracy_topk(logits, targets, k=2) == pytest.approx(2 / 3)
        assert F.accuracy_topk(logits, targets, k=3) == pytest.approx(1.0)

    def test_dropout_eval_is_identity(self, rng):
        x = rng.normal(size=(4, 4))
        out = F.dropout(Tensor(x), 0.5, training=False).data
        np.testing.assert_allclose(out, x)

    def test_dropout_preserves_expectation(self, rng):
        x = np.ones((200, 200))
        out = F.dropout(Tensor(x), 0.3, training=True, rng=rng).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_dropout_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_concat_values(self, rng):
        a, b = rng.normal(size=(1, 2, 3, 3)), rng.normal(size=(1, 4, 3, 3))
        out = F.concat([Tensor(a), Tensor(b)], axis=1).data
        np.testing.assert_allclose(out, np.concatenate([a, b], axis=1))

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            F.concat([])


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        x = rng.normal(2.0, 3.0, size=(8, 4, 5, 5))
        g, b = Tensor(np.ones(4)), Tensor(np.zeros(4))
        out = F.batch_norm2d(x if False else Tensor(x), g, b, np.zeros(4), np.ones(4), training=True).data
        assert abs(out.mean()) < 1e-8
        np.testing.assert_allclose(out.var(axis=(0, 2, 3)), 1.0, atol=1e-4)

    def test_running_stats_updated(self, rng):
        x = rng.normal(5.0, 1.0, size=(16, 2, 4, 4))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm2d(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=True)
        assert (rm > 0.4).all()  # moved 10% of the way towards ~5

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rm = np.array([1.0, -1.0])
        rv = np.array([4.0, 0.25])
        out = F.batch_norm2d(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=False).data
        expected = (x - rm[None, :, None, None]) / np.sqrt(rv[None, :, None, None] + 1e-5)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_gamma_beta_affine(self, rng):
        x = rng.normal(size=(4, 1, 3, 3))
        out = F.batch_norm2d(
            Tensor(x), Tensor(np.array([2.0])), Tensor(np.array([3.0])),
            np.zeros(1), np.ones(1), training=True,
        ).data
        assert abs(out.mean() - 3.0) < 1e-8


class TestIm2colRoundTrip:
    def test_col2im_inverts_counts(self, rng):
        """col2im_add of ones equals the per-pixel window coverage count."""
        x_shape = (1, 1, 6, 6)
        cols = np.ones((1, 4, 4, 1, 3, 3))
        back = F.col2im_add(cols, x_shape, 3, 1, 0)
        # center pixels are covered by 9 windows
        assert back[0, 0, 3, 3] == 9
        assert back[0, 0, 0, 0] == 1

    def test_im2col_values(self, rng):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = F.im2col(x, 2, 2, 0)
        assert cols.shape == (1, 2, 2, 1, 2, 2)
        np.testing.assert_allclose(cols[0, 0, 0, 0], [[0, 1], [4, 5]])
        np.testing.assert_allclose(cols[0, 1, 1, 0], [[10, 11], [14, 15]])


class TestConvSaveMemory:
    def test_save_memory_gradients_identical(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)

        def grads(save):
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            out = F.conv2d(xt, wt, bt, stride=2, padding=1, save_memory=save)
            (out ** 2).sum().backward()
            return xt.grad, wt.grad, bt.grad

        for g_fast, g_lean in zip(grads(False), grads(True)):
            np.testing.assert_allclose(g_fast, g_lean, atol=1e-12)

    def test_global_flag_respected(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(1, 1, 3, 3)), requires_grad=True)
        old = F.CONV_SAVE_MEMORY
        try:
            F.CONV_SAVE_MEMORY = True
            out = F.conv2d(x, w)
            out.sum().backward()
            assert w.grad is not None
        finally:
            F.CONV_SAVE_MEMORY = old
