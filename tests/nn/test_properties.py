"""Property-based tests (hypothesis) of the autograd substrate.

These exercise algebraic identities that must hold for *all* inputs —
linearity of gradients, pooling decompositions, softmax invariances —
catching broadcasting and accumulation bugs that fixed examples miss.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.fusion import box_sum
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


def arrays(shape_strategy, elements=st.floats(-5, 5, allow_nan=False)):
    return shape_strategy.flatmap(
        lambda shape: st.lists(
            elements, min_size=int(np.prod(shape)), max_size=int(np.prod(shape))
        ).map(lambda v: np.array(v, dtype=np.float64).reshape(shape))
    )


small_matrix = arrays(st.tuples(st.integers(1, 4), st.integers(1, 4)))


class TestGradientLinearity:
    @settings(max_examples=30, deadline=None)
    @given(small_matrix, st.floats(-3, 3, allow_nan=False))
    def test_grad_of_scaled_sum_is_constant(self, a, c):
        x = Tensor(a, requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(x.grad, c, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(small_matrix)
    def test_sum_of_parts_equals_whole(self, a):
        """d(sum)/dx via two routes must agree: x.sum() and (x+x).sum()/2."""
        x1 = Tensor(a.copy(), requires_grad=True)
        x1.sum().backward()
        x2 = Tensor(a.copy(), requires_grad=True)
        ((x2 + x2).sum() * 0.5).backward()
        np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(small_matrix)
    def test_relu_plus_negrelu_is_identity_grad(self, a):
        """x = relu(x) - relu(-x); gradients must sum to 1 off the kink."""
        a = a + 0.1 * np.sign(a) + 0.05  # push away from 0
        x = Tensor(a, requires_grad=True)
        (x.relu() - (-x).relu()).sum().backward()
        np.testing.assert_allclose(x.grad, 1.0, atol=1e-12)


class TestPoolingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 3), st.integers(4, 9), st.sampled_from([2, 3]),
        st.integers(0, 2 ** 16),
    )
    def test_avgpool_equals_boxsum_scaled(self, c, h, p, seed):
        x = np.random.default_rng(seed).normal(size=(1, c, h, h))
        with no_grad():
            pooled = F.avg_pool2d(Tensor(x), p).data
        strided_box = box_sum(x, p)[:, :, ::p, ::p]
        ho = (h - p) // p + 1
        np.testing.assert_allclose(pooled, strided_box[:, :, :ho, :ho] / (p * p), atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 8), st.integers(0, 2 ** 16))
    def test_maxpool_ge_avgpool(self, h, seed):
        x = Tensor(np.random.default_rng(seed).normal(size=(1, 1, h, h)))
        with no_grad():
            mx = F.max_pool2d(x, 2).data
            av = F.avg_pool2d(x, 2).data
        assert (mx >= av - 1e-12).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 8), st.integers(0, 2 ** 16))
    def test_jensen_relu_avgpool(self, h, seed):
        """relu(avg(x)) <= avg(relu(x)) — the reordering inequality."""
        x = Tensor(np.random.default_rng(seed).normal(size=(1, 2, h, h)))
        with no_grad():
            reordered = F.relu(F.avg_pool2d(x, 2)).data
            original = F.avg_pool2d(F.relu(x), 2).data
        assert (reordered <= original + 1e-12).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 8), st.integers(0, 2 ** 16))
    def test_maxpool_relu_commutes(self, h, seed):
        """max-pool and ReLU commute exactly (the [8] identity)."""
        x = Tensor(np.random.default_rng(seed).normal(size=(1, 2, h, h)))
        with no_grad():
            a = F.relu(F.max_pool2d(x, 2)).data
            b = F.max_pool2d(F.relu(x), 2).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestSoftmaxProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_matrix, st.floats(-50, 50, allow_nan=False))
    def test_shift_invariance(self, a, shift):
        with no_grad():
            p1 = F.softmax(Tensor(a)).data
            p2 = F.softmax(Tensor(a + shift)).data
        np.testing.assert_allclose(p1, p2, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(small_matrix)
    def test_softmax_grad_rows_sum_to_zero(self, a):
        """Rows of softmax Jacobian sum to zero: grad of sum(softmax) = 0."""
        x = Tensor(a, requires_grad=True)
        F.softmax(x).sum().backward()
        np.testing.assert_allclose(x.grad, 0.0, atol=1e-9)


class TestConvLinearity:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 16), st.floats(-3, 3, allow_nan=False))
    def test_conv_is_linear_in_input(self, seed, c):
        g = np.random.default_rng(seed)
        x = g.normal(size=(1, 2, 6, 6))
        w = Tensor(g.normal(size=(3, 2, 3, 3)))
        with no_grad():
            a = F.conv2d(Tensor(c * x), w).data
            b = c * F.conv2d(Tensor(x), w).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 16))
    def test_conv_additive_in_weights(self, seed):
        g = np.random.default_rng(seed)
        x = Tensor(g.normal(size=(1, 2, 6, 6)))
        w1 = g.normal(size=(3, 2, 3, 3))
        w2 = g.normal(size=(3, 2, 3, 3))
        with no_grad():
            a = F.conv2d(x, Tensor(w1 + w2)).data
            b = F.conv2d(x, Tensor(w1)).data + F.conv2d(x, Tensor(w2)).data
        np.testing.assert_allclose(a, b, atol=1e-9)
