"""Numeric gradient checks of every differentiable primitive.

Each check compares the autograd gradient against central differences
on small random inputs — the strongest correctness evidence for the
substrate that all accuracy experiments stand on.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import numeric_gradient

TOL = 5e-5


def check_grads(build, *arrays):
    """Assert autograd grads of scalar ``build(*tensors)`` match numerics."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for arr, t in zip(arrays, tensors):
        num = numeric_gradient(lambda: build(*[Tensor(a) for a in arrays]).item(), arr)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, num, atol=TOL, rtol=TOL)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestArithmeticGradcheck:
    def test_add_broadcast(self, rng):
        check_grads(lambda a, b: (a + b).sum(), rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_sub(self, rng):
        check_grads(lambda a, b: ((a - b) ** 2).sum(), rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))

    def test_mul_broadcast(self, rng):
        check_grads(lambda a, b: (a * b).sum(), rng.normal(size=(2, 1, 3)), rng.normal(size=(4, 1)))

    def test_div(self, rng):
        b = rng.normal(size=(3,)) + 3.0  # keep away from zero
        check_grads(lambda a, b: (a / b).sum(), rng.normal(size=(2, 3)), b)

    def test_matmul_batched(self, rng):
        check_grads(
            lambda a, b: (a @ b).sum(),
            rng.normal(size=(2, 3, 4)),
            rng.normal(size=(2, 4, 5)),
        )

    def test_pow(self, rng):
        check_grads(lambda a: (a ** 3).sum(), rng.normal(size=(4,)))


class TestElementwiseGradcheck:
    def test_exp(self, rng):
        check_grads(lambda a: a.exp().sum(), rng.normal(size=(3, 3)) * 0.5)

    def test_log(self, rng):
        check_grads(lambda a: a.log().sum(), rng.uniform(0.5, 2.0, size=(5,)))

    def test_tanh(self, rng):
        check_grads(lambda a: a.tanh().sum(), rng.normal(size=(4,)))

    def test_sigmoid(self, rng):
        check_grads(lambda a: a.sigmoid().sum(), rng.normal(size=(4,)))

    def test_relu_away_from_kink(self, rng):
        x = rng.normal(size=(20,))
        x[np.abs(x) < 0.1] = 0.5
        check_grads(lambda a: a.relu().sum(), x)


class TestFunctionalGradcheck:
    def test_conv2d_all_inputs(self, rng):
        check_grads(
            lambda x, w, b: (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum(),
            rng.normal(size=(2, 2, 5, 5)),
            rng.normal(size=(3, 2, 3, 3)),
            rng.normal(size=(3,)),
        )

    def test_conv2d_strided(self, rng):
        check_grads(
            lambda x, w: (F.conv2d(x, w, stride=2) ** 2).sum(),
            rng.normal(size=(1, 2, 7, 7)),
            rng.normal(size=(2, 2, 3, 3)),
        )

    def test_conv2d_rect_kernel(self, rng):
        check_grads(
            lambda x, w: F.conv2d(x, w, stride=(1, 2), padding=(1, 0)).sum(),
            rng.normal(size=(1, 1, 5, 6)),
            rng.normal(size=(2, 1, 2, 3)),
        )

    def test_avg_pool(self, rng):
        check_grads(lambda x: (F.avg_pool2d(x, 2) ** 2).sum(), rng.normal(size=(2, 2, 6, 6)))

    def test_avg_pool_overlapping(self, rng):
        check_grads(lambda x: F.avg_pool2d(x, 3, stride=2).sum(), rng.normal(size=(1, 1, 7, 7)))

    def test_avg_pool_padded(self, rng):
        check_grads(lambda x: (F.avg_pool2d(x, 3, 1, padding=1) ** 2).sum(), rng.normal(size=(1, 2, 5, 5)))

    def test_max_pool(self, rng):
        # distinct values keep argmax stable under the eps perturbation
        x = rng.permutation(72).astype(float).reshape(2, 1, 6, 6)
        check_grads(lambda x: (F.max_pool2d(x, 2) * 0.1).sum(), x)

    def test_max_pool_padded(self, rng):
        x = rng.permutation(50).astype(float).reshape(1, 2, 5, 5)
        check_grads(lambda x: F.max_pool2d(x, 3, 2, padding=1).sum(), x)

    def test_linear(self, rng):
        check_grads(
            lambda x, w, b: (F.linear(x, w, b) ** 2).sum(),
            rng.normal(size=(4, 3)),
            rng.normal(size=(2, 3)),
            rng.normal(size=(2,)),
        )

    def test_batch_norm_training(self, rng):
        run_m = np.zeros(2)
        run_v = np.ones(2)

        def build(x, g, b):
            return (
                F.batch_norm2d(x, g, b, run_m.copy(), run_v.copy(), training=True) ** 2
            ).sum()

        check_grads(
            build,
            rng.normal(size=(3, 2, 4, 4)),
            rng.uniform(0.5, 1.5, size=(2,)),
            rng.normal(size=(2,)),
        )

    def test_batch_norm_eval(self, rng):
        run_m = rng.normal(size=2)
        run_v = rng.uniform(0.5, 2.0, size=2)

        def build(x, g, b):
            return F.batch_norm2d(x, g, b, run_m, run_v, training=False).sum()

        check_grads(
            build,
            rng.normal(size=(2, 2, 3, 3)),
            rng.uniform(0.5, 1.5, size=(2,)),
            rng.normal(size=(2,)),
        )

    def test_softmax(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        check_grads(lambda x: (F.softmax(x) * weights).sum(), rng.normal(size=(3, 4)))

    def test_log_softmax(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        check_grads(lambda x: (F.log_softmax(x) * weights).sum(), rng.normal(size=(3, 4)))

    def test_cross_entropy(self, rng):
        targets = np.array([0, 2, 1])
        check_grads(lambda x: F.cross_entropy(x, targets), rng.normal(size=(3, 4)))

    def test_concat(self, rng):
        check_grads(
            lambda a, b: (F.concat([a, b], axis=1) ** 2).sum(),
            rng.normal(size=(2, 3, 2, 2)),
            rng.normal(size=(2, 1, 2, 2)),
        )

    def test_global_avg_pool(self, rng):
        check_grads(lambda x: (F.global_avg_pool2d(x) ** 2).sum(), rng.normal(size=(2, 3, 4, 4)))


class TestFusedKernelGradcheck:
    def test_fused_conv_pool_grads(self, rng):
        from repro.core.fusion import fused_conv_pool

        check_grads(
            lambda x, w, b: (fused_conv_pool(x, w, b, pool=2, activation="none") ** 2).sum(),
            rng.normal(size=(1, 2, 7, 7)),
            rng.normal(size=(2, 2, 2, 2)),
            rng.normal(size=(2,)),
        )

    def test_fused_conv_pool_padded_grads(self, rng):
        from repro.core.fusion import fused_conv_pool

        check_grads(
            lambda x, w: (fused_conv_pool(x, w, pool=2, padding=1, activation="tanh")).sum(),
            rng.normal(size=(1, 1, 6, 6)),
            rng.normal(size=(1, 1, 3, 3)),
        )
