"""Training harness: learning happens, metrics and early stopping work."""

import numpy as np
import pytest

from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.train import TrainConfig, Trainer, evaluate


def small_model(num_classes=4, rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        Conv2d(3, 8, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Conv2d(8, 12, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(12 * 4 * 4, num_classes, rng=rng),
    )


class TestTrainer:
    def test_training_beats_chance(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=8, batch_size=16, lr=0.05)
        )
        trainer.fit()
        assert trainer.best_top1 > 0.5  # chance = 0.25 on 4 classes

    def test_loss_decreases(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=6, batch_size=16, lr=0.05)
        )
        hist = trainer.fit()
        assert hist[-1].train_loss < hist[0].train_loss

    def test_history_length_and_fields(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=3, batch_size=16)
        )
        hist = trainer.fit()
        assert len(hist) == 3
        for i, h in enumerate(hist):
            assert h.epoch == i
            assert 0.0 <= h.val_top1 <= h.val_top5 <= 1.0

    def test_best_state_restored(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=5, batch_size=16, lr=0.05)
        )
        trainer.fit()
        _, top1, _ = evaluate(trainer.model, val_set)
        assert np.isclose(top1, trainer.best_top1)

    def test_early_stopping_truncates(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(),
            train_set,
            val_set,
            # lr=0 cannot improve -> patience triggers after epoch 0 result repeats
            TrainConfig(epochs=50, batch_size=16, lr=1e-12, patience=2),
        )
        hist = trainer.fit()
        assert len(hist) <= 4

    def test_adam_option(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(),
            train_set,
            val_set,
            TrainConfig(epochs=2, batch_size=16, optimizer="adam", lr=1e-3),
        )
        trainer.fit()

    def test_unknown_optimizer_raises(self, tiny_split):
        train_set, val_set = tiny_split
        with pytest.raises(ValueError):
            Trainer(small_model(), train_set, val_set, TrainConfig(optimizer="lbfgs"))

    def test_schedule_factory_applied(self, tiny_split):
        from repro.nn.optim import StepLR

        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(),
            train_set,
            val_set,
            TrainConfig(epochs=3, batch_size=16, lr=0.1),
            schedule_factory=lambda opt: StepLR(opt, step_size=1, gamma=0.5),
        )
        trainer.fit()
        assert np.isclose(trainer.optimizer.lr, 0.1 * 0.5 ** 3)


class TestEpochTiming:
    def test_wall_and_throughput_fields(self, tiny_split):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=2, batch_size=16)
        )
        hist = trainer.fit()
        for h in hist:
            assert h.wall_s > 0.0
            assert h.samples_per_sec > 0.0
            # throughput is per train-loop second, so it can't exceed
            # the epoch's sample count divided by (a slice of) wall_s
            assert h.samples_per_sec >= len(train_set) / max(h.wall_s, 1e-9) * 0.5

    def test_verbose_logs_to_repro_train_logger(self, tiny_split, caplog):
        import logging

        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(),
            train_set,
            val_set,
            TrainConfig(epochs=1, batch_size=16, verbose=True),
        )
        with caplog.at_level(logging.INFO, logger="repro.train"):
            trainer.fit()
        records = [r for r in caplog.records if r.name == "repro.train"]
        assert len(records) == 1
        assert "train_loss" in records[0].getMessage()
        assert "samples/s" in records[0].getMessage()

    def test_quiet_by_default(self, tiny_split, caplog):
        import logging

        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=1, batch_size=16)
        )
        with caplog.at_level(logging.INFO, logger="repro.train"):
            trainer.fit()
        assert not [r for r in caplog.records if r.name == "repro.train"]


class TestTrainerTracing:
    def test_fit_records_spans_and_metric_series(self, tiny_split, enabled_tracer):
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=2, batch_size=16)
        )
        trainer.fit()
        names = [ev.name for ev in enabled_tracer.events]
        assert names.count("train.fit") == 1
        assert names.count("train.epoch") == 2
        assert names.count("train.evaluate") == 2
        assert names.count("train.batch") > 0
        # derived metric series recorded per epoch
        assert len(enabled_tracer.histograms["train.loss"]) == 2
        assert len(enabled_tracer.histograms["train.samples_per_sec"]) == 2
        assert enabled_tracer.counters["train.samples"] == 2 * len(train_set)
        # epoch spans carry the derived throughput
        ep = next(ev for ev in enabled_tracer.events if ev.name == "train.epoch")
        assert ep.attrs["samples_per_sec"] > 0

    def test_fit_untraced_when_disabled(self, tiny_split):
        from repro.obs import get_tracer

        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set, TrainConfig(epochs=1, batch_size=16)
        )
        before = len(get_tracer().events)
        trainer.fit()
        assert len(get_tracer().events) == before


class TestEvaluate:
    def test_evaluate_returns_sane_metrics(self, tiny_split):
        train_set, val_set = tiny_split
        loss, top1, top5 = evaluate(small_model(), val_set)
        assert loss > 0
        assert 0.0 <= top1 <= top5 <= 1.0

    def test_evaluate_sets_eval_mode(self, tiny_split):
        _, val_set = tiny_split
        model = small_model()
        model.train()
        evaluate(model, val_set)
        assert not model.training

    def test_deterministic(self, tiny_split):
        _, val_set = tiny_split
        model = small_model()
        a = evaluate(model, val_set)
        b = evaluate(model, val_set)
        assert a == b


class TestTrainerAugmentation:
    def test_trainer_with_transform_learns(self, tiny_split):
        from repro.data import Augmentation

        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(),
            train_set,
            val_set,
            TrainConfig(epochs=6, batch_size=16, lr=0.05),
            transform=Augmentation(flip=True, crop_padding=1, seed=0),
        )
        hist = trainer.fit()
        assert trainer.best_top1 > 0.4  # chance is 0.25

    def test_validation_never_augmented(self, tiny_split):
        """evaluate() bypasses the transform (it builds its own loader)."""
        train_set, val_set = tiny_split
        model = small_model()
        a = evaluate(model, val_set)
        trainer = Trainer(
            model, train_set, val_set,
            TrainConfig(epochs=1, batch_size=16, lr=0.0001),
            transform=lambda imgs: np.zeros_like(imgs),  # destructive
        )
        # even a destructive train transform leaves evaluation inputs intact
        b = evaluate(model, val_set)
        assert a[0] == b[0]


class TestLoggerHygiene:
    """Repeated fit() in one process must never stack handlers or
    double-emit (the PR 5 logger-hygiene fix)."""

    @pytest.fixture
    def bare_logging(self):
        """Simulate a process with no logging configured at all."""
        import logging

        from repro.train import trainer as trainer_module

        train_logger = logging.getLogger("repro.train")
        root = logging.getLogger()
        saved = (
            list(train_logger.handlers),
            train_logger.propagate,
            train_logger.level,
            list(root.handlers),
            trainer_module._LOG_HANDLER,
        )
        train_logger.handlers.clear()
        root.handlers.clear()
        train_logger.propagate = True
        trainer_module._LOG_HANDLER = None
        yield train_logger
        train_logger.handlers.clear()
        train_logger.handlers.extend(saved[0])
        train_logger.propagate = saved[1]
        train_logger.setLevel(saved[2])
        root.handlers.clear()
        root.handlers.extend(saved[3])
        trainer_module._LOG_HANDLER = saved[4]

    def test_fallback_handler_attached_exactly_once(self, bare_logging):
        import logging

        from repro.train.trainer import _ensure_train_logging

        # pytest re-attaches its capture handler to the root logger at
        # call-phase start; drop it here so this really is a bare process
        logging.getLogger().handlers.clear()
        for _ in range(3):
            _ensure_train_logging()
        assert len(bare_logging.handlers) == 1
        assert bare_logging.propagate is False

    def test_respects_existing_configuration(self, bare_logging):
        """An application-attached handler means we add nothing — and
        repeated fits never double-emit through a stacked fallback."""
        import logging

        from repro.train.trainer import _ensure_train_logging

        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        bare_logging.addHandler(_Capture())
        for _ in range(3):
            _ensure_train_logging()
        assert len(bare_logging.handlers) == 1  # only the app's handler

    def test_repeated_verbose_fit_emits_once_per_epoch(self, bare_logging, tiny_split):
        import logging

        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        bare_logging.addHandler(_Capture())
        bare_logging.setLevel(logging.INFO)
        train_set, val_set = tiny_split
        trainer = Trainer(
            small_model(), train_set, val_set,
            TrainConfig(epochs=2, batch_size=16, verbose=True),
        )
        trainer.fit()
        n_first = len(records)
        assert n_first == 2  # one line per epoch
        trainer2 = Trainer(
            small_model(), train_set, val_set,
            TrainConfig(epochs=2, batch_size=16, verbose=True),
        )
        trainer2.fit()
        assert len(records) == n_first + 2  # no double emission


class TestTrainerNumerics:
    def test_collector_enabled_during_fit_and_context_stamped(self, tiny_split):
        from repro.obs.numerics import NumericsCollector

        train_set, val_set = tiny_split
        col = NumericsCollector(watchdog="record")
        trainer = Trainer(
            small_model(), train_set, val_set,
            TrainConfig(epochs=1, batch_size=16), numerics=col,
        )
        trainer.fit()
        assert not col.enabled  # disabled again after fit
        assert col.epoch == 0  # context was stamped during the run
        assert col.batch is not None

    def test_raise_policy_stops_on_injected_nan(self, tiny_split):
        """A NaN planted in the weights turns into a NumericsError naming
        the offending layer and the training position."""
        from repro.obs import instrument_model
        from repro.obs.numerics import NumericsCollector, NumericsError

        train_set, val_set = tiny_split
        model = small_model()
        col = NumericsCollector(watchdog="raise")
        instrument_model(model, numerics=col)
        model[0].weight.data[0, 0, 0, 0] = np.nan
        trainer = Trainer(
            model, train_set, val_set,
            TrainConfig(epochs=1, batch_size=16), numerics=col,
        )
        with pytest.raises(NumericsError) as err:
            trainer.fit()
        assert err.value.layer == "0"  # the first conv of the Sequential
        assert "batch 0" in str(err.value)
        assert not col.enabled  # cleaned up despite the exception

    def test_loss_watchdog_without_instrumentation(self, tiny_split):
        """Even uninstrumented, a non-finite loss trips the watchdog."""
        from repro.obs.numerics import NumericsCollector, NumericsError

        train_set, val_set = tiny_split
        model = small_model()
        model[0].weight.data[:] = np.nan
        col = NumericsCollector(watchdog="raise")
        trainer = Trainer(
            model, train_set, val_set,
            TrainConfig(epochs=1, batch_size=16), numerics=col,
        )
        with pytest.raises(NumericsError) as err:
            trainer.fit()
        assert "train.loss" in str(err.value)

    def test_record_policy_completes_and_records(self, tiny_split):
        from repro.obs import instrument_model
        from repro.obs.numerics import NumericsCollector

        train_set, val_set = tiny_split
        model = small_model()
        col = NumericsCollector(watchdog="record")
        instrument_model(model, numerics=col)
        model[0].weight.data[0, 0, 0, 0] = np.nan
        trainer = Trainer(
            model, train_set, val_set,
            TrainConfig(epochs=1, batch_size=16), numerics=col,
        )
        trainer.fit()  # must not raise
        assert col.first_anomaly is not None
        assert col.first_anomaly["epoch"] == 0

    def test_healthy_run_records_no_anomaly(self, tiny_split):
        from repro.obs.numerics import NumericsCollector

        train_set, val_set = tiny_split
        col = NumericsCollector(watchdog="raise")
        trainer = Trainer(
            small_model(), train_set, val_set,
            TrainConfig(epochs=1, batch_size=16), numerics=col,
        )
        trainer.fit()  # raise policy, healthy run: no error
        assert col.first_anomaly is None
