"""Bit-level arithmetic: Wallace multiplier, adders, FP pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.arith import (
    GateStats,
    PipelinedFPMultiplier,
    ripple_carry_add,
    wallace_multiply_signed,
    wallace_multiply_unsigned,
    wallace_stage_bound,
)


class TestRippleCarryAdd:
    def test_exhaustive_4bit(self):
        for a in range(16):
            for b in range(16):
                s, c = ripple_carry_add(a, b, 4)
                assert s + (c << 4) == a + b

    def test_stats_counted(self):
        stats = GateStats()
        ripple_carry_add(5, 9, 8, stats)
        assert stats.full_adders == 8
        assert stats.cpa_bits == 8

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ripple_carry_add(16, 0, 4)


class TestWallaceUnsigned:
    def test_exhaustive_4bit(self):
        for a in range(16):
            for b in range(16):
                p, _ = wallace_multiply_unsigned(a, b, 4)
                assert p == a * b, (a, b)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_sampled_8bit(self, a, b):
        p, _ = wallace_multiply_unsigned(a, b, 8)
        assert p == a * b

    def test_and_gate_count_is_width_squared(self):
        _, stats = wallace_multiply_unsigned(123, 45, 8)
        assert stats.and_gates == 64

    def test_reduction_stages_within_bound(self):
        for width in (4, 8, 16):
            _, stats = wallace_multiply_unsigned((1 << width) - 1, (1 << width) - 1, width)
            assert stats.reduction_stages <= wallace_stage_bound(width) + 1

    def test_stage_bound_values(self):
        # classic Wallace depths: 8-bit -> 4 stages, 16-bit -> 6
        assert wallace_stage_bound(8) == 4
        assert wallace_stage_bound(16) == 6
        assert wallace_stage_bound(2) == 0

    def test_gate_stats_add(self):
        a = GateStats(1, 2, 3, 4, 5)
        b = GateStats(10, 20, 30, 2, 50)
        c = a + b
        assert c.and_gates == 11 and c.full_adders == 22
        assert c.reduction_stages == 4  # max, not sum


class TestWallaceSigned:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_sampled_signed_8bit(self, a, b):
        p, _ = wallace_multiply_signed(a, b, 8)
        assert p == a * b

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            wallace_multiply_signed(128, 1, 8)

    def test_int8_mac_slice_consistency(self):
        """The INT8 MAC datapath (Wallace multiply + wide accumulate)
        reproduces the integer fused kernel's products exactly."""
        rng = np.random.default_rng(0)
        xs = rng.integers(-127, 128, size=50)
        ws = rng.integers(-127, 128, size=50)
        acc_bitlevel = 0
        for x, w in zip(xs, ws):
            p, _ = wallace_multiply_signed(int(x), int(w), 8)
            acc_bitlevel += p
        assert acc_bitlevel == int(np.sum(xs.astype(np.int64) * ws.astype(np.int64)))


class TestPipelinedFPMultiplier:
    def test_three_cycle_latency(self):
        pipe = PipelinedFPMultiplier()
        results = [pipe.tick((2.0, 3.0)), pipe.tick(None), pipe.tick(None), pipe.tick(None)]
        assert results[:3] == [None, None, None]
        assert results[3] == 6.0

    def test_full_throughput_one_per_cycle(self):
        pipe = PipelinedFPMultiplier()
        out = []
        pairs = [(float(i), 2.0) for i in range(10)]
        for p in pairs:
            r = pipe.tick(p)
            if r is not None:
                out.append(r)
        out.extend(pipe.flush())
        assert out == [2.0 * i for i in range(10)]
        assert pipe.issued == pipe.retired == 10
