"""Loop tiling and DRAM traffic model."""

import numpy as np
import pytest

from repro.accel.tiling import TilingPlan, dram_traffic, plan_tiling
from repro.models.specs import LayerSpec


@pytest.fixture
def spec():
    return LayerSpec("c", in_channels=16, out_channels=32, input_size=32, kernel=3, padding=1, pool=2)


class TestTilingPlan:
    def test_trips(self, spec):
        plan = TilingPlan(16, 8, 16, 16)
        assert plan.trips(spec) == (2, 2, 2, 2)

    def test_trips_ceil(self, spec):
        plan = TilingPlan(20, 16, 32, 32)
        assert plan.trips(spec) == (2, 1, 1, 1)

    def test_buffer_elements_counts_halo(self, spec):
        plan = TilingPlan(1, 1, 4, 4)
        # input tile includes the K-1 halo: (4+2)^2
        assert plan.buffer_elements(spec) == 36 + 9 + 16


class TestPlanTiling:
    def test_plan_fits_buffer(self, spec):
        for kb in (8, 32, 134):
            plan = plan_tiling(spec, kb * 1024, 4.0)
            assert plan.buffer_elements(spec) * 4.0 <= kb * 1024

    def test_bigger_buffer_never_more_traffic(self, spec):
        t_small = dram_traffic(spec, plan_tiling(spec, 8 * 1024, 4.0), 4.0)
        t_large = dram_traffic(spec, plan_tiling(spec, 134 * 1024, 4.0), 4.0)
        assert t_large <= t_small

    def test_whole_layer_traffic_when_buffer_huge(self, spec):
        """With an unbounded buffer the chosen plan achieves compulsory
        traffic: each input/weight/output byte moves once.  (Tile sizes
        may differ — reloading a 1-channel tile N times costs the same
        as loading N channels once.)"""
        plan = plan_tiling(spec, 100 * 1024 * 1024, 4.0)
        whole = TilingPlan(spec.out_channels, spec.in_channels, 32, 32)
        assert dram_traffic(spec, plan, 4.0) == pytest.approx(dram_traffic(spec, whole, 4.0))

    def test_absurdly_small_buffer_raises(self, spec):
        with pytest.raises(ValueError):
            plan_tiling(spec, 16, 4.0)  # 4 elements cannot hold a unit tile


class TestDramTraffic:
    def test_minimum_is_compulsory_traffic(self, spec):
        """With whole-layer tiles, traffic = input + weights + output."""
        plan = TilingPlan(spec.out_channels, spec.in_channels, 32, 32)
        got = dram_traffic(spec, plan, 4.0)
        inp = spec.in_channels * 34 * 34  # padded halo counted once
        w = spec.out_channels * spec.in_channels * 9
        out = spec.out_channels * spec.output_size ** 2
        assert got == pytest.approx((inp + w + out) * 4.0)

    def test_bytes_per_element_scales(self, spec):
        plan = TilingPlan(8, 8, 8, 8)
        assert dram_traffic(spec, plan, 1.0) == pytest.approx(dram_traffic(spec, plan, 4.0) / 4)

    def test_preprocessed_input_halves_input_bytes(self, spec):
        plan = TilingPlan(8, 8, 8, 8)
        full = dram_traffic(spec, plan, 4.0)
        pre = dram_traffic(spec, plan, 4.0, input_preprocessed=True)
        assert pre < full
        out_bytes = spec.output_size ** 2 * spec.out_channels * 4.0
        # exactly the input share is halved
        tm, tn, tr, tc = plan.trips(spec)
        in_tile = 8 * (8 + 2) * (8 + 2)
        in_bytes = tm * tn * tr * tc * in_tile * 4.0
        assert full - pre == pytest.approx(in_bytes / 2)

    def test_preprocessed_output_halves_output_bytes(self, spec):
        plan = TilingPlan(8, 8, 8, 8)
        full = dram_traffic(spec, plan, 4.0)
        pre = dram_traffic(spec, plan, 4.0, output_preprocessed=True)
        out_bytes = spec.output_size ** 2 * spec.out_channels * 4.0
        assert full - pre == pytest.approx(out_bytes / 2)

    def test_smaller_tm_increases_input_reloads(self, spec):
        t_full = dram_traffic(spec, TilingPlan(32, 16, 32, 32), 4.0)
        t_split = dram_traffic(spec, TilingPlan(16, 16, 32, 32), 4.0)
        assert t_split > t_full
