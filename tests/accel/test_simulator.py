"""Cycle/energy simulator: orderings the paper's results depend on."""

import numpy as np
import pytest

from repro.accel.config import get_config
from repro.accel.simulator import compare_networks, simulate_layer, simulate_network
from repro.models.specs import LayerSpec, get_specs


@pytest.fixture
def fusable():
    return LayerSpec("c", in_channels=16, out_channels=32, input_size=16, kernel=3, padding=1, pool=2)


@pytest.fixture
def plain():
    return LayerSpec("c", in_channels=16, out_channels=32, input_size=16, kernel=3, padding=1)


class TestSimulateLayer:
    def test_mlcnn_never_slower_on_fusable(self, fusable):
        base = simulate_layer(fusable, get_config("dcnn-fp32"))
        fused = simulate_layer(fusable, get_config("mlcnn-fp32"))
        assert fused.cycles <= base.cycles
        assert fused.fused and not base.fused

    def test_identical_on_non_fusable(self, plain):
        base = simulate_layer(plain, get_config("dcnn-fp32"))
        ml = simulate_layer(plain, get_config("mlcnn-fp32"))
        assert base.cycles == ml.cycles
        assert base.energy.total_j == pytest.approx(ml.energy.total_j)

    def test_cycles_max_of_compute_memory(self, fusable):
        r = simulate_layer(fusable, get_config("dcnn-fp32"))
        assert r.cycles == max(r.compute_cycles, r.memory_cycles)

    def test_energy_components_positive(self, fusable):
        r = simulate_layer(fusable, get_config("mlcnn-fp32"))
        e = r.energy
        assert e.dram_j > 0 and e.buffer_j > 0 and e.mac_j > 0 and e.static_j > 0

    def test_larger_pool_larger_mult_saving(self):
        small = LayerSpec("s", 8, 8, 17, 2, pool=2)
        big = LayerSpec("b", 8, 8, 17, 2, pool=8)
        def speedup(spec):
            b = simulate_layer(spec, get_config("dcnn-fp32"))
            f = simulate_layer(spec, get_config("mlcnn-fp32"))
            return b.ops.multiplications / f.ops.multiplications
        assert speedup(big) > speedup(small)

    def test_preprocessed_input_reduces_memory_cycles(self, fusable):
        raw = simulate_layer(fusable, get_config("mlcnn-fp32"), input_preprocessed=False)
        pre = simulate_layer(fusable, get_config("mlcnn-fp32"), input_preprocessed=True)
        assert pre.dram_bytes < raw.dram_bytes


class TestSimulateNetwork:
    @pytest.mark.parametrize("model", ["lenet5", "vgg16", "googlenet", "densenet"])
    def test_mlcnn_beats_dcnn_network_wide(self, model):
        specs = get_specs(model)
        base = simulate_network(specs, get_config("dcnn-fp32"))
        fused = simulate_network(specs, get_config("mlcnn-fp32"))
        assert fused.cycles < base.cycles
        assert fused.energy.total_j < base.energy.total_j

    def test_precision_ordering(self):
        """INT8 > FP16 > FP32 in speed (more slices, less traffic)."""
        specs = get_specs("vgg16")
        cycles = {
            name: simulate_network(specs, get_config(name)).cycles
            for name in ("mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8")
        }
        assert cycles["mlcnn-int8"] < cycles["mlcnn-fp16"] < cycles["mlcnn-fp32"]

    def test_network_result_accessors(self):
        specs = get_specs("lenet5")
        res = simulate_network(specs, get_config("dcnn-fp32"))
        assert res.layer("C1").name == "C1"
        with pytest.raises(KeyError):
            res.layer("C99")
        assert res.seconds == pytest.approx(res.cycles / 1e9)


class TestCompare:
    def test_headline_speedups_in_paper_ballpark(self):
        """Average fused-layer FP32 speedup lands in [2.5, 6] (paper:
        3.2x); INT8 in [10, 24] (paper: 12.8x)."""
        speeds = {"mlcnn-fp32": [], "mlcnn-int8": []}
        for model in ("densenet", "vgg16", "googlenet", "lenet5"):
            specs = get_specs(model)
            fused_names = [s.name for s in specs if s.is_fusable]
            for cand in speeds:
                cmp = compare_networks(specs, get_config("dcnn-fp32"), get_config(cand))
                ls = cmp.layer_speedups()
                speeds[cand] += [ls[n] for n in fused_names]
        fp32 = np.mean(speeds["mlcnn-fp32"])
        int8 = np.mean(speeds["mlcnn-int8"])
        assert 2.5 <= fp32 <= 6.0
        assert 10.0 <= int8 <= 24.0
        # precision scaling factor ~4x between FP32 and INT8, as in the paper
        assert 3.0 <= int8 / fp32 <= 5.0

    def test_energy_efficiency_tracks_speedup(self):
        """Paper: 2.9x energy at 3.2x speed (ratio ~0.9); ours stays
        within [0.5, 1.2]."""
        specs = get_specs("googlenet")
        cmp = compare_networks(specs, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
        ratio = cmp.energy_efficiency / cmp.speedup
        assert 0.5 <= ratio <= 1.2

    def test_googlenet_stage5b_has_best_layer_speedup(self):
        """The paper's C9 (an 8x8-pooled GoogLeNet layer) tops Fig. 13."""
        specs = get_specs("googlenet")
        cmp = compare_networks(specs, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
        ls = cmp.layer_speedups()
        fused = {s.name: ls[s.name] for s in specs if s.is_fusable}
        best = max(fused, key=fused.get)
        assert best.startswith("5b")
        assert fused[best] > 5.0

    def test_densenet_transitions_speed_up(self):
        """Even with zero addition reuse, RME alone speeds DenseNet's
        transitions (Fig. 13 shows gains for DenseNet)."""
        specs = get_specs("densenet")
        cmp = compare_networks(specs, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
        ls = cmp.layer_speedups()
        for s in specs:
            if s.is_fusable:
                assert ls[s.name] > 1.5

    def test_layer_energy_ratios_all_ge_one(self):
        specs = get_specs("vgg16")
        cmp = compare_networks(specs, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
        for name, ratio in cmp.layer_energy_ratios().items():
            assert ratio >= 0.99, name


class TestBatchSimulation:
    def test_batch_amortizes_weight_traffic(self):
        """Per-image cycles shrink with batch on weight-heavy layers."""
        spec = LayerSpec("c", 256, 256, 8, 3, padding=1)  # weights >> activations
        cfg = get_config("dcnn-fp32")
        one = simulate_layer(spec, cfg, batch=1)
        many = simulate_layer(spec, cfg, batch=16)
        assert many.dram_bytes < 16 * one.dram_bytes
        assert many.cycles / 16 <= one.cycles

    def test_compute_scales_linearly(self):
        spec = LayerSpec("c", 16, 16, 16, 3, padding=1, pool=2)
        cfg = get_config("mlcnn-fp32")
        one = simulate_layer(spec, cfg, batch=1)
        four = simulate_layer(spec, cfg, batch=4)
        assert four.ops.multiplications == 4 * one.ops.multiplications

    def test_network_batch_speedup_preserved(self):
        """MLCNN still wins at batch 8 (batching helps both configs)."""
        specs = get_specs("vgg16")
        base = simulate_network(specs, get_config("dcnn-fp32"), batch=8)
        fused = simulate_network(specs, get_config("mlcnn-fp32"), batch=8)
        assert fused.cycles < base.cycles

    def test_invalid_batch(self):
        spec = LayerSpec("c", 4, 4, 8, 3)
        with pytest.raises(ValueError):
            simulate_layer(spec, get_config("dcnn-fp32"), batch=0)


class TestSimulatorTracing:
    def test_per_layer_attribution_events(self, enabled_tracer):
        specs = get_specs("lenet5")
        result = simulate_network(specs, get_config("mlcnn-fp32"))
        layer_events = [ev for ev in enabled_tracer.events if ev.name == "sim.layer"]
        assert len(layer_events) == len(specs) == len(result.layers)
        for ev, layer in zip(layer_events, result.layers):
            assert ev.attrs["layer"] == layer.name
            assert ev.attrs["cycles"] == layer.cycles
            assert ev.attrs["compute_cycles"] == layer.compute_cycles
            assert ev.attrs["memory_cycles"] == layer.memory_cycles
            assert ev.attrs["dram_bytes"] == layer.dram_bytes
            assert ev.attrs["energy_total_j"] == layer.energy.total_j
            assert ev.attrs["bound"] in ("compute", "memory")
            assert ev.attrs["config"] == "mlcnn-fp32"

    def test_network_span_wraps_layer_events(self, enabled_tracer):
        simulate_network(get_specs("lenet5"), get_config("dcnn-fp32"))
        net = next(ev for ev in enabled_tracer.events if ev.name == "sim.network")
        assert net.attrs["cycles"] > 0
        for ev in enabled_tracer.events:
            if ev.name == "sim.layer":
                assert ev.parent == "sim.network"

    def test_compare_networks_span(self, enabled_tracer):
        compare_networks(
            get_specs("lenet5"), get_config("dcnn-fp32"), get_config("mlcnn-fp32")
        )
        names = [ev.name for ev in enabled_tracer.events]
        assert names.count("sim.compare") == 1
        assert names.count("sim.network") == 2

    def test_untraced_by_default(self):
        from repro.obs import get_tracer

        before = len(get_tracer().events)
        simulate_network(get_specs("lenet5"), get_config("mlcnn-fp32"))
        assert len(get_tracer().events) == before
