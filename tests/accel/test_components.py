"""DRAM timing model, multi-bank buffer, multi-channel RTL layer."""

import numpy as np
import pytest

from repro.accel.buffers import MultiBankBuffer, conflict_free_stride
from repro.accel.dram import DramConfig, DramModel
from repro.accel.rtl import RTLFusedConvPoolLayer
from repro.core.fusion import fused_conv_pool
from repro.nn.tensor import Tensor, no_grad


class TestDramModel:
    def test_sequential_stream_mostly_hits(self):
        dram = DramModel()
        dram.stream(0, 64 * 1024, chunk=64)
        assert dram.stats.hit_rate > 0.9

    def test_random_access_mostly_misses(self):
        dram = DramModel()
        rng = np.random.default_rng(0)
        for addr in rng.integers(0, 64 * 1024 * 1024, size=200):
            dram.access(int(addr) * 4096, 16)
        assert dram.stats.hit_rate < 0.1

    def test_streaming_faster_than_random(self):
        seq = DramModel()
        seq_cycles = seq.stream(0, 16 * 1024, chunk=64)
        rnd = DramModel()
        rng = np.random.default_rng(1)
        rnd_cycles = sum(
            rnd.access(int(a) * 8192, 64) for a in rng.integers(0, 10_000, size=256)
        )
        assert seq_cycles < rnd_cycles

    def test_effective_bandwidth_bounded_by_peak(self):
        dram = DramModel()
        dram.stream(0, 1 << 20, chunk=512)
        assert 0 < dram.effective_bandwidth() <= dram.config.bytes_per_cycle

    def test_multi_row_transfer_pays_activations(self):
        cfg = DramConfig(row_size_bytes=256)
        dram = DramModel(cfg)
        dram.access(0, 1024)  # spans 4 rows
        assert dram.stats.row_misses == 4

    def test_reset(self):
        dram = DramModel()
        dram.access(0, 64)
        dram.reset()
        assert dram.stats.accesses == 0

    def test_validation(self):
        dram = DramModel()
        with pytest.raises(ValueError):
            dram.access(0, 0)
        with pytest.raises(ValueError):
            dram.access(-1, 8)
        with pytest.raises(ValueError):
            DramConfig(row_size_bytes=0)


class TestMultiBankBuffer:
    def test_read_write_roundtrip(self):
        buf = MultiBankBuffer(4, 16)
        buf.write(13, 3.5)
        assert buf.read(13) == 3.5

    def test_interleaving(self):
        buf = MultiBankBuffer(4, 4)
        # consecutive addresses land in distinct banks
        assert buf._locate(0)[0] != buf._locate(1)[0]
        assert buf._locate(0)[0] == buf._locate(4)[0]

    def test_unit_stride_parallel_reads_conflict_free(self):
        buf = MultiBankBuffer(8, 32)
        cycles = buf.cycle(list(range(8)))
        assert cycles == 1
        assert buf.stats.conflicts == 0

    def test_same_bank_reads_serialize(self):
        buf = MultiBankBuffer(8, 32)
        cycles = buf.cycle([0, 8, 16])  # all bank 0
        assert cycles == 3
        assert buf.stats.conflicts == 2

    def test_capacity_and_bounds(self):
        buf = MultiBankBuffer(2, 4)
        assert buf.capacity_words == 8
        with pytest.raises(IndexError):
            buf.read(8)

    def test_load_array(self):
        buf = MultiBankBuffer(4, 8)
        n = buf.load_array([1.0, 2.0, 3.0], base=5)
        assert n == 3
        assert buf.read(6) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiBankBuffer(0, 4)

    def test_conflict_free_stride(self):
        assert conflict_free_stride(8, 8) == 1
        assert conflict_free_stride(8, 4) == 1
        with pytest.raises(ValueError):
            conflict_free_stride(4, 8)


class TestRTLFusedConvPoolLayer:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(9)

    def test_matches_fused_kernel_multichannel(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        rep = RTLFusedConvPoolLayer(w, b).run(x)
        with no_grad():
            ref = fused_conv_pool(Tensor(x[None]), Tensor(w), Tensor(b), pool=2).data[0]
        np.testing.assert_allclose(rep.outputs, ref, atol=1e-9)

    def test_parallel_cycles_scale_with_slices(self, rng):
        x = rng.normal(size=(4, 10, 10))
        w = rng.normal(size=(4, 4, 3, 3))
        serial = RTLFusedConvPoolLayer(w, mac_slices=1).run(x)
        par = RTLFusedConvPoolLayer(w, mac_slices=16).run(x)
        assert par.cycles_parallel == pytest.approx(serial.cycles_parallel / 16, rel=0.05)
        np.testing.assert_allclose(par.outputs, serial.outputs)

    def test_default_zero_bias(self, rng):
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        rep = RTLFusedConvPoolLayer(w).run(x)
        with no_grad():
            ref = fused_conv_pool(Tensor(x[None]), Tensor(w), None, pool=2).data[0]
        np.testing.assert_allclose(rep.outputs, ref, atol=1e-10)

    def test_op_counts_scale_with_channels(self, rng):
        x1 = rng.normal(size=(1, 9, 9))
        x2 = rng.normal(size=(2, 9, 9))
        w1 = rng.normal(size=(1, 1, 3, 3))
        w2 = rng.normal(size=(1, 2, 3, 3))
        r1 = RTLFusedConvPoolLayer(w1).run(x1)
        r2 = RTLFusedConvPoolLayer(w2).run(x2)
        assert r2.multiplications == 2 * r1.multiplications
        assert r2.half_additions == 2 * r1.half_additions

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RTLFusedConvPoolLayer(rng.normal(size=(2, 2, 3, 4)))
        with pytest.raises(ValueError):
            RTLFusedConvPoolLayer(rng.normal(size=(2, 2, 3, 3)), mac_slices=0)
        with pytest.raises(ValueError):
            RTLFusedConvPoolLayer(rng.normal(size=(2, 2, 3, 3)), bias=np.zeros(3))
        layer = RTLFusedConvPoolLayer(rng.normal(size=(2, 2, 3, 3)))
        with pytest.raises(ValueError):
            layer.run(rng.normal(size=(3, 8, 8)))  # channel mismatch
