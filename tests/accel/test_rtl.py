"""RTL micro-simulator: datapath equivalence and structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.rtl import ARUnit, Fifo, MACSlice, RTLFusedConvPool, ShiftRegister
from repro.core.fusion import fused_conv_pool, fused_conv_pool_counted
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestFifo:
    def test_fifo_order(self):
        f = Fifo(4)
        for v in (1.0, 2.0, 3.0):
            f.push(v)
        assert [f.pop(), f.pop(), f.pop()] == [1.0, 2.0, 3.0]

    def test_overflow_raises(self):
        f = Fifo(1)
        f.push(1.0)
        with pytest.raises(OverflowError):
            f.push(2.0)

    def test_underflow_raises(self):
        with pytest.raises(IndexError):
            Fifo(1).pop()

    def test_high_water_tracked(self):
        f = Fifo(4)
        f.push(1.0)
        f.push(2.0)
        f.pop()
        f.push(3.0)
        assert f.high_water == 2

    def test_flags(self):
        f = Fifo(1)
        assert f.empty and not f.full
        f.push(0.0)
        assert f.full and not f.empty

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            Fifo(0)


class TestShiftRegister:
    def test_taps_follow_shifts(self):
        sr = ShiftRegister(3)
        for v in (1.0, 2.0, 3.0):
            sr.shift_in(v)
        assert [sr.tap(i) for i in range(3)] == [1.0, 2.0, 3.0]
        sr.shift_in(4.0)  # evicts 1.0
        assert sr.tap(0) == 2.0

    def test_tap_out_of_range_raises(self):
        sr = ShiftRegister(2)
        sr.shift_in(1.0)
        with pytest.raises(IndexError):
            sr.tap(1)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            ShiftRegister(0)


class TestARUnit:
    def test_half_and_full_additions(self):
        fifo = Fifo(8)
        ar = ARUnit(fifo)
        ar.start_row()
        ar.tick((1.0, 2.0))  # HA=3, no FA yet
        ar.tick((3.0, 4.0))  # HA=7, FA=3+7=10
        ar.tick((5.0, 6.0))  # HA=11, FA=7+11=18
        assert ar.stats.half_additions == 3
        assert ar.stats.full_additions == 2
        assert fifo.pop() == 10.0
        assert fifo.pop() == 18.0

    def test_idle_cycle(self):
        ar = ARUnit(Fifo(2))
        ar.tick(None)
        assert ar.stats.half_additions == 0

    def test_start_row_resets_column_state(self):
        fifo = Fifo(8)
        ar = ARUnit(fifo)
        ar.tick((1.0, 1.0))
        ar.start_row()
        ar.tick((2.0, 2.0))  # no FA across the row boundary
        assert ar.stats.full_additions == 0


class TestMACSlice:
    def test_accumulates_k2_products(self, rng):
        w = rng.normal(size=(2, 2))
        mac = MACSlice(w, bias=0.5)
        vals = rng.normal(size=(2, 2))
        for i in range(2):
            for j in range(2):
                mac.issue(vals[i, j], i, j)
        out = mac.finish_output(pool=2)
        expected = max((w * vals).sum() / 4 + 0.5, 0.0)
        assert out == pytest.approx(expected)

    def test_finish_requires_full_window(self, rng):
        mac = MACSlice(rng.normal(size=(2, 2)))
        mac.issue(1.0, 0, 0)
        with pytest.raises(RuntimeError):
            mac.finish_output()

    def test_rejects_non_square_weights(self, rng):
        with pytest.raises(ValueError):
            MACSlice(rng.normal(size=(2, 3)))

    def test_relu_applied(self, rng):
        mac = MACSlice(np.ones((1, 1)), bias=-100.0)
        mac.issue(1.0, 0, 0)
        assert mac.finish_output() == 0.0


class TestRTLFusedConvPool:
    @pytest.mark.parametrize("h,k", [(8, 2), (9, 3), (12, 3), (13, 5), (16, 4)])
    def test_matches_vectorized_kernel(self, rng, h, k):
        img = rng.normal(size=(h, h))
        w = rng.normal(size=(k, k))
        b = float(rng.normal())
        report = RTLFusedConvPool(w, b).run(img)
        with no_grad():
            ref = fused_conv_pool(
                Tensor(img[None, None]), Tensor(w[None, None]), Tensor(np.array([b])), pool=2
            ).data[0, 0]
        np.testing.assert_allclose(report.outputs, ref, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(h=st.integers(6, 14), k=st.integers(2, 4), seed=st.integers(0, 10_000))
    def test_property_equivalence(self, h, k, seed):
        if h < k + 2:
            return
        g = np.random.default_rng(seed)
        img = g.normal(size=(h, h))
        w = g.normal(size=(k, k))
        report = RTLFusedConvPool(w, 0.0).run(img)
        with no_grad():
            ref = fused_conv_pool(
                Tensor(img[None, None]), Tensor(w[None, None]), None, pool=2
            ).data[0, 0]
        np.testing.assert_allclose(report.outputs, ref, atol=1e-9)

    def test_each_input_read_once(self, rng):
        """The stream feeds every vertical pair exactly once: 2 reads per
        (row-pair, column)."""
        img = rng.normal(size=(10, 10))
        report = RTLFusedConvPool(rng.normal(size=(3, 3))).run(img)
        assert report.input_reads == 2 * 9 * 10

    def test_ha_fa_counts_match_counted_kernel(self, rng):
        """The RTL stream computes each half/full addition once.  With
        dimensions where the windows touch the whole I_Acc plane
        (h=12, k=3: conv output 10, pooled 5), the totals equal the
        instrumented kernel's under full LAR+GAR."""
        img = rng.normal(size=(12, 12))
        w = rng.normal(size=(3, 3))
        report = RTLFusedConvPool(w).run(img)
        _, counter = fused_conv_pool_counted(
            img[None], w[None, None], None, use_lar=True, use_gar_row=True, use_gar_col=True
        )
        assert report.ar_stats.half_additions == counter.half_additions
        assert report.ar_stats.full_additions == counter.full_additions
        assert report.mac_stats.multiplications == counter.multiplications

    def test_rtl_never_computes_fewer_small_adds(self, rng):
        """When the pooled grid leaves I_Acc rows unused, the streaming
        RTL still builds the whole plane — never fewer additions than
        the demand-driven counted kernel."""
        img = rng.normal(size=(11, 11))
        w = rng.normal(size=(3, 3))
        report = RTLFusedConvPool(w).run(img)
        _, counter = fused_conv_pool_counted(img[None], w[None, None], None)
        assert report.ar_stats.half_additions >= counter.half_additions
        assert report.ar_stats.full_additions >= counter.full_additions
        assert report.mac_stats.multiplications == counter.multiplications

    def test_fifo_within_declared_depth(self, rng):
        img = rng.normal(size=(12, 12))
        report = RTLFusedConvPool(rng.normal(size=(3, 3))).run(img)
        assert report.fifo_high_water <= 12 + 3

    def test_cycle_count_dominated_by_macs(self, rng):
        """Cycles >= multiplications (one issue per cycle) and >= stream
        length."""
        img = rng.normal(size=(10, 10))
        report = RTLFusedConvPool(rng.normal(size=(3, 3))).run(img)
        assert report.cycles >= report.mac_stats.multiplications
        assert report.cycles >= 9 * 10

    def test_rejects_multichannel(self, rng):
        with pytest.raises(ValueError):
            RTLFusedConvPool(rng.normal(size=(3, 3))).run(rng.normal(size=(2, 8, 8)))

    def test_rejects_non_2x2_pool(self, rng):
        with pytest.raises(ValueError):
            RTLFusedConvPool(rng.normal(size=(3, 3))).run(rng.normal(size=(8, 8)), pool=3)

    def test_rejects_too_small_input(self, rng):
        with pytest.raises(ValueError):
            RTLFusedConvPool(rng.normal(size=(5, 5))).run(rng.normal(size=(5, 5)))


class TestTrace:
    def test_trace_disabled_by_default(self, rng):
        report = RTLFusedConvPool(rng.normal(size=(3, 3))).run(rng.normal(size=(9, 9)))
        assert report.trace is None

    def test_trace_event_counts(self, rng):
        report = RTLFusedConvPool(rng.normal(size=(3, 3))).run(
            rng.normal(size=(9, 9)), record_trace=True
        )
        kinds = {}
        for e in report.trace:
            kinds[e.action] = kinds.get(e.action, 0) + 1
        assert kinds["ha"] == report.ar_stats.half_additions
        assert kinds["fa"] == report.ar_stats.full_additions
        assert kinds["issue"] == report.mac_stats.multiplications
        assert kinds["output"] == report.outputs.size

    def test_trace_cycles_monotone(self, rng):
        report = RTLFusedConvPool(rng.normal(size=(2, 2))).run(
            rng.normal(size=(8, 8)), record_trace=True
        )
        cycles = [e.cycle for e in report.trace]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))
        assert cycles[-1] <= report.cycles

    def test_trace_output_values_match(self, rng):
        report = RTLFusedConvPool(rng.normal(size=(3, 3)), bias=0.1).run(
            rng.normal(size=(10, 10)), record_trace=True
        )
        traced = [e.value for e in report.trace if e.action == "output"]
        np.testing.assert_allclose(traced, report.outputs.ravel())

    def test_trace_format(self, rng):
        report = RTLFusedConvPool(rng.normal(size=(2, 2))).run(
            rng.normal(size=(6, 6)), record_trace=True
        )
        line = report.trace[0].format()
        assert line.startswith("@") and "ar" in line
