"""Accelerator configs (Table VII), area and energy models."""

import numpy as np
import pytest

from repro.accel.area import AREA_45NM, config_area_mm2, slices_for_budget
from repro.accel.config import AcceleratorConfig, TABLE7_CONFIGS, get_config
from repro.accel.energy import (
    ENERGY_45NM,
    EnergyBreakdown,
    dynamic_energy,
    static_energy,
)


class TestTable7Configs:
    def test_all_four_present(self):
        assert set(TABLE7_CONFIGS) == {"dcnn-fp32", "mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"}

    def test_slice_counts_match_paper(self):
        assert get_config("dcnn-fp32").mac_slices == 32
        assert get_config("mlcnn-fp32").mac_slices == 32
        assert get_config("mlcnn-fp16").mac_slices == 64
        assert get_config("mlcnn-int8").mac_slices == 128

    def test_bitwidths(self):
        assert get_config("mlcnn-fp16").bitwidth == 16
        assert get_config("mlcnn-int8").bytes_per_element == 1.0

    def test_same_area_and_memory_budget(self):
        areas = {c.area_mm2 for c in TABLE7_CONFIGS.values()}
        mems = {c.onchip_memory_kb for c in TABLE7_CONFIGS.values()}
        assert areas == {1.52}
        assert mems == {134}

    def test_dcnn_is_unfused(self):
        assert not get_config("dcnn-fp32").fused
        assert all(get_config(n).fused for n in ("mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"))

    def test_fused_configs_get_ar_units(self):
        cfg = get_config("mlcnn-fp32")
        assert cfg.ar_units == cfg.mac_slices // 2

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get_config("tpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig("bad", mac_slices=0, bitwidth=32, fused=False)
        with pytest.raises(ValueError):
            AcceleratorConfig("bad", mac_slices=4, bitwidth=12, fused=False)

    def test_precision_labels(self):
        assert get_config("mlcnn-int8").precision_label == "INT8"
        assert get_config("dcnn-fp32").precision_label == "FP32"


class TestAreaModel:
    def test_paper_slice_counts_fit_budget(self):
        """Table VII's 32/64/128 slices all fit 1.52 mm^2."""
        assert slices_for_budget(32) >= 32
        assert slices_for_budget(16) >= 64
        assert slices_for_budget(8) >= 128

    def test_lower_precision_packs_more(self):
        assert slices_for_budget(8) > slices_for_budget(16) > slices_for_budget(32)

    def test_config_areas_within_budget(self):
        for cfg in TABLE7_CONFIGS.values():
            assert config_area_mm2(cfg.mac_slices, cfg.bitwidth) <= 1.52 + 1e-9

    def test_area_scales_with_slices(self):
        assert config_area_mm2(64, 32) == pytest.approx(2 * config_area_mm2(32, 32))

    def test_unknown_bitwidth_raises(self):
        with pytest.raises(ValueError):
            slices_for_budget(4)

    def test_multiplier_dominates_slice_area(self):
        for a in AREA_45NM.values():
            assert a.multiplier_mm2 > a.adder_mm2


class TestEnergyModel:
    def test_lower_precision_cheaper_ops(self):
        assert ENERGY_45NM[32].mult_pj > ENERGY_45NM[16].mult_pj > ENERGY_45NM[8].mult_pj
        assert ENERGY_45NM[32].add_pj > ENERGY_45NM[8].add_pj

    def test_dram_much_more_expensive_than_buffer(self):
        for t in ENERGY_45NM.values():
            # pJ per 4-byte word vs one buffer access
            assert 4 * t.dram_pj_per_byte > 10 * t.buffer_access_pj

    def test_dynamic_energy_linear_in_counts(self):
        t = ENERGY_45NM[32]
        e1 = dynamic_energy(t, 100, 100, 100, 100.0)
        e2 = dynamic_energy(t, 200, 200, 200, 200.0)
        assert e2.total_j == pytest.approx(2 * e1.total_j)

    def test_breakdown_sums(self):
        e = EnergyBreakdown(dram_j=1.0, buffer_j=2.0, mac_j=3.0, static_j=4.0)
        assert e.total_j == 10.0
        d = e.as_dict()
        assert d["total"] == 10.0 and d["dram"] == 1.0

    def test_breakdown_addition(self):
        a = EnergyBreakdown(1, 1, 1, 1)
        b = EnergyBreakdown(2, 2, 2, 2)
        assert (a + b).total_j == 12.0

    def test_static_energy_proportional_to_time(self):
        t = ENERGY_45NM[32]
        assert static_energy(t, 2.0) == pytest.approx(2 * static_energy(t, 1.0))

    def test_mult_more_expensive_than_add(self):
        for t in ENERGY_45NM.values():
            assert t.mult_pj > t.add_pj
