"""Weight-input-reuse dataflow schedule (Fig. 8)."""

import pytest

from repro.accel.dataflow import (
    ScheduleStep,
    timeline,
    validate_schedule,
    weight_input_reuse_schedule,
)
from repro.accel.tiling import TilingPlan, plan_tiling
from repro.models.specs import LayerSpec


@pytest.fixture
def spec():
    return LayerSpec("c", in_channels=16, out_channels=32, input_size=16, kernel=3, padding=1, pool=2)


@pytest.fixture
def plan(spec):
    return plan_tiling(spec, 32 * 1024, 4.0)


class TestSchedule:
    def test_schedule_valid(self, spec, plan):
        steps = weight_input_reuse_schedule(spec, plan)
        validate_schedule(steps, plan.trips(spec))  # must not raise

    def test_counts(self, spec, plan):
        steps = weight_input_reuse_schedule(spec, plan)
        tm, tn, tr, tc = plan.trips(spec)
        kinds = {}
        for s in steps:
            kinds[s.kind] = kinds.get(s.kind, 0) + 1
        assert kinds["compute"] == tm * tn * tr * tc
        assert kinds["load_weights"] == tm * tn * tr * tc
        assert kinds["store_output"] == tm * tr * tc

    def test_weight_loaded_before_compute(self, spec, plan):
        steps = weight_input_reuse_schedule(spec, plan)
        loaded = None
        for s in steps:
            if s.kind == "load_weights":
                loaded = (s.m, s.n)
            if s.kind == "compute":
                assert loaded == (s.m, s.n)

    def test_input_channel_tiles_consecutive(self, spec, plan):
        """All n-tiles of one (m, r, c) output tile run back to back
        before its store — partial sums never leave the chip."""
        steps = weight_input_reuse_schedule(spec, plan)
        open_tile = None
        for s in steps:
            if s.kind == "compute":
                key = (s.m, s.r, s.c)
                if open_tile is None:
                    open_tile = key
                else:
                    assert key == open_tile
            if s.kind == "store_output":
                assert (s.m, s.r, s.c) == open_tile
                open_tile = None

    def test_validator_catches_missing_load(self, spec, plan):
        steps = weight_input_reuse_schedule(spec, plan)
        broken = [s for s in steps if s.kind != "load_weights"]
        with pytest.raises(ValueError):
            validate_schedule(broken, plan.trips(spec))

    def test_validator_catches_double_store(self, spec, plan):
        steps = list(weight_input_reuse_schedule(spec, plan))
        first_store = next(s for s in steps if s.kind == "store_output")
        steps.append(first_store)
        with pytest.raises(ValueError):
            validate_schedule(steps, plan.trips(spec))

    def test_validator_catches_missing_store(self, spec, plan):
        steps = [s for s in weight_input_reuse_schedule(spec, plan) if s.kind != "store_output"]
        with pytest.raises(ValueError):
            validate_schedule(steps, plan.trips(spec))


class TestTimeline:
    def test_makespan_is_max_of_streams_plus_fill(self, spec, plan):
        steps = weight_input_reuse_schedule(spec, plan)
        t = timeline(steps)
        first_load = next(s.cost for s in steps if s.kind.startswith("load"))
        assert t.makespan == pytest.approx(
            max(t.load_cycles + t.store_cycles, t.compute_cycles) + first_load
        )

    def test_more_slices_shift_towards_memory_bound(self, spec, plan):
        few = timeline(weight_input_reuse_schedule(spec, plan, mac_slices=1))
        many = timeline(weight_input_reuse_schedule(spec, plan, mac_slices=1024))
        assert few.compute_bound
        assert not many.compute_bound
        assert many.makespan < few.makespan

    def test_timeline_consistent_with_simulator_scale(self, spec):
        """Schedule makespan is within 2x of the roofline simulator's
        cycle estimate for the same layer (same modelling family)."""
        from repro.accel.config import get_config
        from repro.accel.simulator import simulate_layer

        cfg = get_config("dcnn-fp32")
        plan = plan_tiling(spec, cfg.onchip_memory_kb * 1024, cfg.bytes_per_element)
        steps = weight_input_reuse_schedule(
            spec, plan,
            bytes_per_element=cfg.bytes_per_element,
            dram_bytes_per_cycle=cfg.dram_bytes_per_cycle,
            mac_slices=cfg.mac_slices,
        )
        t = timeline(steps)
        sim = simulate_layer(spec, cfg)
        assert 0.5 <= t.makespan / sim.cycles <= 2.0
